"""Declarative fleet topologies: N monitor nodes over partitioned traffic.

A :class:`FleetTopology` describes a monitoring fleet the way a
:class:`repro.SystemConfig` describes a single host: a value object that
can be written down (YAML or JSON), validated eagerly, and turned into
runnable pieces — one :class:`~repro.monitor.config.SystemConfig` per node
plus a traffic partition rule.  The schema::

    nodes: 16                  # uniform fleet, or a list of node objects:
    # nodes:
    #   - name: pop-ams        # unique node name
    #     weight: 2.0          # share of the flow-hash space / capacity
    #     overlay:             # per-node SystemConfig field overrides
    #       cycles_per_second: 2.0e8
    #       mode: reactive
    partition_by: flow-hash    # flow-hash | src-prefix | ingress
    prefix_bits: 8             # src-prefix only: prefix width routed on
    defaults:                  # SystemConfig overlay applied to every node
      mode: predictive

Partition modes (all flow-affine, so per-flow query state never spans
nodes — the invariant the ``RESULT_MERGE`` second tier relies on):

``flow-hash``
    Packets route by their 5-tuple hash into buckets sized by node
    ``weight`` — the classic L4 load-balancer fleet.
``src-prefix``
    Packets route by the top ``prefix_bits`` of the source address — a
    fleet of per-prefix vantage points (an aggregation router per /8, say).
``ingress``
    Every source address is pinned to one ingress link and each node owns
    one link — a fleet of border taps.

Each node's cycle budget defaults to its weight-share of the base config's
``cycles_per_second`` (so fleet capacity totals the single-host capacity it
federates against); an ``overlay`` with an explicit ``cycles_per_second``
makes the node's budget independent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..monitor.config import SystemConfig
from ..monitor.sharding import shard_seed

#: Supported traffic partition rules.
PARTITION_MODES: Tuple[str, ...] = ("flow-hash", "src-prefix", "ingress")


@dataclass
class NodeSpec:
    """One monitor node of a fleet: a name, a traffic share, an overlay."""

    name: str
    weight: float = 1.0
    overlay: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.weight = float(self.weight)
        if not self.name:
            raise ValueError("fleet nodes need a non-empty name")
        if not self.weight > 0.0:
            raise ValueError(
                f"node {self.name!r}: weight must be > 0, got {self.weight}")
        self.overlay = dict(self.overlay)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"name": self.name}
        if self.weight != 1.0:
            data["weight"] = self.weight
        if self.overlay:
            data["overlay"] = dict(self.overlay)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NodeSpec":
        unknown = set(data) - {"name", "weight", "overlay"}
        if unknown:
            raise ValueError(
                f"unknown node spec keys {sorted(unknown)}; "
                "a node is {name, weight?, overlay?}")
        return cls(name=str(data["name"]),
                   weight=float(data.get("weight", 1.0)),
                   overlay=dict(data.get("overlay", {})))


@dataclass
class FleetTopology:
    """A declarative fleet: node list, partition rule, shared defaults."""

    nodes: Sequence[NodeSpec]
    partition_by: str = "flow-hash"
    prefix_bits: int = 8
    defaults: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.nodes = tuple(self.nodes)
        if not self.nodes:
            raise ValueError("a fleet needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate node names: {duplicates}")
        if self.partition_by not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition_by {self.partition_by!r}; "
                f"valid modes: {PARTITION_MODES}")
        self.prefix_bits = int(self.prefix_bits)
        if not 1 <= self.prefix_bits <= 32:
            raise ValueError("prefix_bits must be in [1, 32]")
        self.defaults = dict(self.defaults)
        # Overlay keys must be SystemConfig fields: a topology typo should
        # fail at load time with a helpful message, not at node build time.
        probe = SystemConfig()
        for overlay, owner in ([(self.defaults, "defaults")] +
                               [(node.overlay, f"node {node.name!r}")
                                for node in self.nodes]):
            if overlay:
                try:
                    probe.replace(**self._parsed_overlay(overlay))
                except (TypeError, ValueError) as error:
                    raise ValueError(f"{owner}: {error}") from None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def weights(self) -> Tuple[float, ...]:
        return tuple(node.weight for node in self.nodes)

    @property
    def partition_key(self) -> Tuple:
        """Hashable identity of the partition rule, for the batch memo.

        Two topologies with the same rule share partition cache entries;
        anything that changes packet routing (mode, node count, weights,
        prefix width) changes the key — node overlays do not, since they
        never affect which node a packet lands on.
        """
        return ("fleet", self.partition_by, self.num_nodes, self.weights,
                self.prefix_bits if self.partition_by == "src-prefix"
                else None)

    # ------------------------------------------------------------------
    @staticmethod
    def _parsed_overlay(overlay: Dict[str, object]) -> Dict[str, object]:
        """Resolve overlay values that need parsing (query spec lists)."""
        parsed = dict(overlay)
        if "queries" in parsed and parsed["queries"] is not None:
            from ..queries import parse_query_specs
            parsed["queries"] = parse_query_specs(parsed["queries"])
        return parsed

    def node_configs(self, base: Optional[SystemConfig] = None,
                     force: Optional[Dict[str, object]] = None
                     ) -> List[SystemConfig]:
        """One :class:`SystemConfig` per node, derived from ``base``.

        Overlay order (later wins): ``base`` → topology ``defaults`` →
        the node's ``overlay`` → ``force`` (caller-level overrides, e.g.
        the exactness check pinning every node to reference mode).  A node
        without an explicit ``cycles_per_second`` overlay receives its
        weight-share of the base capacity; node seeds derive per index
        with :func:`~repro.monitor.sharding.shard_seed` (node 0 keeps the
        base seed, so a one-node fleet is bit-identical to the single
        host it wraps) unless the overlay pins ``seed`` itself.
        """
        base = base if base is not None else SystemConfig()
        total_weight = sum(self.weights)
        configs: List[SystemConfig] = []
        for index, node in enumerate(self.nodes):
            overlay = {**self._parsed_overlay(self.defaults),
                       **self._parsed_overlay(node.overlay)}
            if "cycles_per_second" not in overlay:
                overlay["cycles_per_second"] = (
                    base.cycles_per_second * node.weight / total_weight)
            if "seed" not in overlay:
                overlay["seed"] = shard_seed(base.seed, index)
            if force:
                overlay.update(force)
            configs.append(base.replace(**overlay))
        return configs

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "nodes": [node.to_dict() for node in self.nodes],
            "partition_by": self.partition_by,
        }
        if self.partition_by == "src-prefix":
            data["prefix_bits"] = self.prefix_bits
        if self.defaults:
            data["defaults"] = dict(self.defaults)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetTopology":
        unknown = set(data) - {"nodes", "partition_by", "prefix_bits",
                               "defaults"}
        if unknown:
            raise ValueError(
                f"unknown topology keys {sorted(unknown)}; a topology is "
                "{nodes, partition_by?, prefix_bits?, defaults?}")
        nodes = data.get("nodes")
        if isinstance(nodes, int):
            specs = [NodeSpec(name=f"node{index}") for index in range(nodes)]
        elif isinstance(nodes, (list, tuple)):
            specs = [node if isinstance(node, NodeSpec)
                     else NodeSpec.from_dict(node) for node in nodes]
        else:
            raise ValueError("topology 'nodes' must be an integer count or "
                             "a list of node objects")
        return cls(nodes=specs,
                   partition_by=str(data.get("partition_by", "flow-hash")),
                   prefix_bits=int(data.get("prefix_bits", 8)),
                   defaults=dict(data.get("defaults", {})))

    @classmethod
    def uniform(cls, num_nodes: int, partition_by: str = "flow-hash",
                **kwargs) -> "FleetTopology":
        """An equal-weight fleet of ``num_nodes`` identical nodes."""
        if int(num_nodes) < 1:
            raise ValueError("a fleet needs at least one node")
        return cls(nodes=[NodeSpec(name=f"node{index}")
                          for index in range(int(num_nodes))],
                   partition_by=partition_by, **kwargs)


def load_topology(path: str) -> FleetTopology:
    """Load a topology spec from a YAML or JSON file.

    ``.json`` files parse with the stdlib; ``.yaml``/``.yml`` need PyYAML
    and fail with an actionable error when it is not installed (the JSON
    schema is identical, so any topology can be expressed without it).
    """
    text = open(path, "r", encoding="utf-8").read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:
            raise ImportError(
                f"loading {path!r} needs PyYAML, which is not installed; "
                "write the topology as JSON instead (same schema)"
            ) from None
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError(f"topology file {path!r} must contain a mapping")
    return FleetTopology.from_dict(data)


__all__ = [
    "FleetTopology",
    "NodeSpec",
    "PARTITION_MODES",
    "load_topology",
]
