"""Fleet-level traffic partitioning: route packets to monitor nodes.

The :class:`FleetPartitioner` turns a topology's partition rule into
per-packet node assignments and per-node sub-batches.  It rides on
:meth:`repro.monitor.packet.Batch.partition` with the topology's own
``partition_key``, so fleet splits get their own memo entries and never
collide with the shard-level flow-hash splits the nodes themselves perform
on the very same batches.

Every rule is flow-affine: packets of one flow always land on the same
node (the 5-tuple hash trivially; source-prefix and ingress routing
because a flow's source address is constant), which is what keeps per-flow
query state node-local and the ``RESULT_MERGE`` second tier applicable.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..monitor.packet import Batch
from ..monitor.sharding import FLOW_FIELDS
from .topology import FleetTopology


class FleetPartitioner:
    """Assign packets of a batch to the nodes of a topology."""

    def __init__(self, topology: FleetTopology) -> None:
        self.topology = topology
        self.num_nodes = topology.num_nodes
        if topology.partition_by == "flow-hash":
            # Bucket boundaries over the uint64 hash space, sized by node
            # weight: node i owns hashes in [bounds[i], bounds[i+1]).
            weights = np.asarray(topology.weights, dtype=np.float64)
            cumulative = np.cumsum(weights) / weights.sum()
            self._bounds = cumulative[:-1] * float(2 ** 64)
        else:
            self._bounds = None

    # ------------------------------------------------------------------
    def assignments(self, batch: Batch) -> np.ndarray:
        """Per-packet node indices in ``[0, num_nodes)``."""
        mode = self.topology.partition_by
        if mode == "flow-hash":
            hashes = batch.aggregate_hashes(FLOW_FIELDS).astype(np.float64)
            return np.searchsorted(self._bounds, hashes,
                                   side="right").astype(np.intp)
        if mode == "src-prefix":
            shift = np.uint32(32 - self.topology.prefix_bits)
            prefixes = np.asarray(batch.src_ip, dtype=np.uint32) >> shift
            return (prefixes % np.uint32(self.num_nodes)).astype(np.intp)
        # "ingress": every source address enters the network on one link
        # and each node taps one link, so routing is a stable hash of the
        # source address alone.
        hashes = batch.aggregate_hashes(("src_ip",))
        return (hashes % np.uint64(self.num_nodes)).astype(np.intp)

    def split(self, batch: Batch) -> List[Batch]:
        """The batch split into one sub-batch per node (order preserved).

        Memoised under the topology's ``partition_key``, so repeated runs
        over a memoised trace split each batch once — and independently of
        any shard-level ``batch.partition`` splits of the same batch.
        """
        if self.num_nodes == 1:
            return [batch]
        return batch.partition(self.num_nodes, FLOW_FIELDS,
                               partition_key=self.topology.partition_key,
                               assignments=self.assignments(batch))


__all__ = ["FleetPartitioner"]
