"""Chapter 4 experiments: the load shedding system.

These experiments exercise the full monitoring system under overload and
compare the paper's predictive scheme against the ``original`` (drop when the
capture buffer fills) and ``reactive`` (SEDA-like) baselines.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..monitor.packet import PacketTrace
from . import runner, scenarios

#: Query set of the Chapter 4 evaluation (the seven of Table 3.2).
CHAPTER4_QUERIES = scenarios.VALIDATION_SEVEN


def _three_mode_runs(trace: PacketTrace, overload: float,
                     query_names: Sequence[str]) -> Dict[str, object]:
    """Run predictive / original / reactive at the same overload level."""
    base_capacity, reference = runner.calibrate_capacity(query_names, trace)
    capacity = base_capacity * (1.0 - overload)
    runs = {}
    for mode in ("predictive", "original", "reactive"):
        runs[mode] = runner.run_system(query_names, trace, capacity, mode=mode,
                                       strategy="eq_srates")
    return {"reference": reference, "runs": runs,
            "capacity_per_second": capacity,
            "base_capacity_per_second": base_capacity}


def figure_4_1_cpu_cdf(scale: float = 1.0, overload: float = 0.5,
                       trace: Optional[PacketTrace] = None,
                       query_names: Sequence[str] = CHAPTER4_QUERIES,
                       ) -> Dict[str, object]:
    """CDF of per-batch CPU usage for the three load shedding methods.

    The predictive system should concentrate its service time just below the
    per-bin limit, while original/reactive regularly exceed it.
    """
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    bundle = _three_mode_runs(trace, overload, query_names)
    limit = bundle["capacity_per_second"] * runner.TIME_BIN
    cdfs = {}
    exceed_prob = {}
    for mode, result in bundle["runs"].items():
        cycles = result.cycles_per_bin()
        cdfs[mode] = np.sort(cycles)
        exceed_prob[mode] = float((cycles > limit).mean()) if len(cycles) else 0.0
    return {
        "cpu_limit_per_batch": limit,
        "sorted_cycles": cdfs,
        "probability_exceeding_limit": exceed_prob,
        "bundle": bundle,
    }


def figure_4_2_drops(scale: float = 1.0, overload: float = 0.5,
                     trace: Optional[PacketTrace] = None,
                     query_names: Sequence[str] = CHAPTER4_QUERIES,
                     bundle: Optional[Dict[str, object]] = None,
                     ) -> Dict[str, object]:
    """Link load, uncontrolled drops and unsampled packets per method."""
    if bundle is None:
        if trace is None:
            trace = scenarios.payload_trace(scale=scale)
        bundle = _three_mode_runs(trace, overload, query_names)
    series = {}
    totals = {}
    for mode, result in bundle["runs"].items():
        series[mode] = {
            "incoming_packets": result.series("incoming_packets"),
            "dropped_packets": result.series("dropped_packets"),
            "unsampled_packets": result.series("unsampled_packets"),
        }
        totals[mode] = {
            "total_packets": result.total_packets,
            "dropped_packets": result.dropped_packets,
            "drop_fraction": result.drop_fraction,
            "unsampled_packets": result.unsampled_packets,
        }
    return {"series": series, "totals": totals, "bundle": bundle}


def table_4_1_accuracy_by_method(scale: float = 1.0, overload: float = 0.5,
                                 trace: Optional[PacketTrace] = None,
                                 query_names: Sequence[str] = CHAPTER4_QUERIES,
                                 bundle: Optional[Dict[str, object]] = None,
                                 ) -> Dict[str, object]:
    """Accuracy error per query for predictive / original / reactive.

    Only the sampling-robust queries are compared (Table 4.1); trace and
    pattern-search have no un-sampling procedure and are excluded, exactly as
    in the paper.
    """
    if bundle is None:
        if trace is None:
            trace = scenarios.payload_trace(scale=scale)
        bundle = _three_mode_runs(trace, overload, query_names)
    reference = bundle["reference"]
    robust = [name for name in query_names
              if name in scenarios.SAMPLING_ROBUST_FIVE]
    rows = []
    mean_error = {}
    for mode, result in bundle["runs"].items():
        errors = runner.error_by_query(result, reference)
        mean_error[mode] = float(np.mean([errors[name] for name in robust]))
    for name in robust:
        row = {"query": name}
        for mode, result in bundle["runs"].items():
            row[mode] = runner.error_by_query(result, reference)[name]
        rows.append(row)
    return {"rows": rows, "mean_error": mean_error, "bundle": bundle}


def figure_4_4_cpu_usage(scale: float = 1.0, overload: float = 0.5,
                         trace: Optional[PacketTrace] = None,
                         query_names: Sequence[str] = CHAPTER4_QUERIES,
                         ) -> Dict[str, object]:
    """CPU usage after load shedding versus predicted demand (predictive run)."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    result, reference = runner.run_with_overload(query_names, trace, overload,
                                                 mode="predictive",
                                                 strategy="eq_srates")
    return {
        "series": {
            "system_overhead": result.series("system_overhead"),
            "shedding_overhead": result.series("shedding_overhead") +
            result.series("prediction_overhead"),
            "query_cycles": result.series("query_cycles"),
            "predicted_cycles": result.series("predicted_cycles"),
            "total_cycles": result.cycles_per_bin(),
        },
        "cpu_limit_per_batch": result.budget.per_bin,
        "dropped_packets": result.dropped_packets,
        "mean_sampling_rate": result.mean_sampling_rate(),
    }


def figure_4_5_syn_flood(scale: float = 1.0,
                         trace: Optional[PacketTrace] = None,
                         capacity_margin: float = 1.3,
                         ) -> Dict[str, object]:
    """Flows query under a SYN flood, with and without load shedding.

    The capacity is set to ``capacity_margin`` times the query's demand on
    normal traffic, so the anomaly (and only the anomaly) overloads the
    system, reproducing the setting of Figures 4.5/4.6.
    """
    if trace is None:
        trace = scenarios.syn_flood_trace(scale=scale)
    query_names = ("flows",)
    # Calibrate on the anomaly-free part by using the median, which is robust
    # to the anomalous bins.
    _, reference = runner.calibrate_capacity(query_names, trace)
    per_bin = reference.cycles_per_bin()
    normal_demand = float(np.median(per_bin))
    capacity = normal_demand * capacity_margin / runner.TIME_BIN

    shedding = runner.run_system(query_names, trace, capacity,
                                 mode="predictive", strategy="eq_srates")
    no_shedding = runner.run_system(query_names, trace, capacity,
                                    mode="original")
    flow_error_shed = runner.error_by_query(shedding, reference)["flows"]
    flow_error_none = runner.error_by_query(no_shedding, reference)["flows"]
    return {
        "cpu_threshold_per_batch": capacity * runner.TIME_BIN,
        "series": {
            "demand_cycles": per_bin,
            "with_shedding_cycles": shedding.cycles_per_bin(),
            "without_shedding_cycles": no_shedding.cycles_per_bin(),
        },
        "flows_error_with_shedding": flow_error_shed,
        "flows_error_without_shedding": flow_error_none,
        "dropped_packets_with_shedding": shedding.dropped_packets,
        "dropped_packets_without_shedding": no_shedding.dropped_packets,
    }
