"""Plain-text rendering of experiment results.

The harness functions return dictionaries of rows and series; these helpers
turn them into the aligned text tables printed by the benchmarks and the
examples, so the reproduced numbers can be eyeballed next to the paper's.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str], title: str = "",
                 float_format: str = "{:.4f}") -> str:
    """Render a list of row dictionaries as an aligned text table."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = [str(c) for c in columns]
    body = [[cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) if body
              else len(header[i]) for i in range(len(columns))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Iterable[float]], title: str = "",
                  max_points: int = 20) -> str:
    """Render named numeric series, downsampled to ``max_points`` values."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=np.float64)
        if len(arr) > max_points:
            idx = np.linspace(0, len(arr) - 1, max_points).astype(int)
            arr = arr[idx]
        rendered = " ".join(f"{v:.3g}" for v in arr)
        lines.append(f"{name:>24}: {rendered}")
    return "\n".join(lines)


def summarize_distribution(values: Iterable[float]) -> Dict[str, float]:
    """Mean / std / percentiles summary used in several tables."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {"mean": 0.0, "std": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
