"""Parallel scenario engine: matrix-driven experiment grids.

The evaluation chapters each hand-roll loops over (trace x overload x mode x
strategy) combinations, re-running the expensive reference calibration for
every point.  This module turns that idiom into an engine:

* :class:`ScenarioMatrix` expands axis lists — workload names from
  :data:`~repro.experiments.scenarios.WORKLOADS`, overload factors ``K``,
  operating modes, allocation strategies and predictor kinds — into a flat,
  deterministically-seeded list of :class:`ScenarioCell` jobs.
* :class:`ParallelRunner` executes the cells.  Work shared between cells
  (trace synthesis and the reference execution that calibrates the cycle
  capacity, Section 5.5.3) is computed once per trace group; the remaining
  per-cell executions are independent and are sharded across a process pool.
  Results come back as structured :class:`CellResult` records joined against
  the group's reference execution.

Every cell seed is derived from the matrix ``base_seed`` and the cell's
coordinates with a stable hash, so a cell's execution is bit-identical no
matter which worker runs it, whether the pool is enabled, or how the matrix
is sliced — the property the golden regression tests pin down.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pool import fork_pool_map
from ..monitor.packet import PacketTrace
from ..monitor.system import MODES, MODE_ALIASES, ExecutionResult
from . import runner, scenarios

#: Query set used when a matrix does not specify one: cheap, sampling-robust
#: queries that run on header-only traces.
DEFAULT_QUERY_SET: Tuple[str, ...] = ("counter", "flows", "top-k",
                                      "application")


def derive_seed(base_seed: int, text: str) -> int:
    """Stable 31-bit seed from a base seed and a textual coordinate.

    ``zlib.crc32`` is deterministic across processes and Python runs (unlike
    ``hash``), which is what makes cells reproducible under sharding.
    """
    mixed = zlib.crc32(text.encode("utf-8")) ^ ((base_seed * 0x9E3779B1)
                                                & 0xFFFFFFFF)
    return int(mixed & 0x7FFFFFFF)


# ----------------------------------------------------------------------
# Matrix expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioCell:
    """One fully-specified experiment: a single system execution."""

    trace: str
    overload: float
    mode: str
    strategy: str = "eq_srates"
    predictor: str = "mlr"
    queries: Tuple[str, ...] = DEFAULT_QUERY_SET
    scale: float = 1.0
    time_bin: float = runner.TIME_BIN
    num_shards: int = 1
    shard_rebalance: bool = True
    #: Number of tenant groups the cell's queries are split across
    #: (round-robin); ``0`` runs the classic untenanted system.
    tenant_count: int = 0
    seed: int = 0

    @property
    def cell_id(self) -> str:
        """Human-readable coordinate string (also the seeding key).

        Unsharded, untenanted cells keep the historical coordinate format
        so the frozen golden seed expectations stay valid; sharded cells
        append their shard count (and a rebalance marker), tenanted cells
        their tenant count, as extra coordinates.
        """
        base = (f"{self.trace}/K={self.overload:g}/{self.mode}/"
                f"{self.strategy}/{self.predictor}")
        if self.num_shards > 1:
            suffix = "" if self.shard_rebalance else "-static"
            base = f"{base}/shards={self.num_shards}{suffix}"
        if self.tenant_count > 0:
            base = f"{base}/tenants={self.tenant_count}"
        return base

    def group_key(self) -> Tuple:
        """Cells with equal group keys share a trace and a calibration."""
        return (self.trace, self.queries, self.scale, self.time_bin)

    def tenant_groups(self) -> Tuple:
        """The cell's queries dealt round-robin into ``tenant_count``
        :class:`~repro.core.tenancy.TenantGroup` objects."""
        from ..core.tenancy import TenantGroup
        count = min(int(self.tenant_count), len(self.queries))
        return tuple(
            TenantGroup(name=f"tenant-{index:03d}",
                        queries=tuple(self.queries[index::count]))
            for index in range(count))

    def to_config(self, cycles_per_second: Optional[float] = None):
        """The :class:`repro.SystemConfig` this cell's system is built from.

        The cell's query set rides along as the config's declarative
        ``queries`` field (or, for tenanted cells, partitioned into the
        declarative ``tenants`` field, from which the config derives its
        queries), so a cell config is self-contained: it can be serialised,
        shipped and rebuilt without the cell object.
        """
        kwargs = dict(
            mode=self.mode, strategy=self.strategy, predictor=self.predictor,
            seed=self.seed, cycles_per_second=cycles_per_second,
            num_shards=self.num_shards,
            shard_rebalance=self.shard_rebalance)
        if self.tenant_count > 0:
            kwargs["tenants"] = self.tenant_groups()
        else:
            kwargs["queries"] = self.queries
        return runner.system_config(**kwargs)


@dataclass
class ScenarioMatrix:
    """A grid of scenarios over the cartesian product of the axes.

    Parameters
    ----------
    traces:
        Workload names from :data:`~repro.experiments.scenarios.WORKLOADS`.
    overloads:
        Overload factors ``K`` in ``[0, 1)`` (Section 5.4 convention: the
        evaluated system runs at ``(1 - K)`` times the calibrated capacity).
    modes:
        Operating modes (aliases such as ``no_lshed`` are accepted).
    strategies, predictors:
        Allocation strategies and predictor kinds (only meaningful for the
        predictive mode, but expanded like any other axis).
    queries:
        Query set shared by every cell: registry names, declarative
        :class:`~repro.queries.QuerySpec` entries (or spec dicts /
        ``(name, kwargs)`` pairs), a named mix from
        :data:`~repro.experiments.scenarios.QUERY_MIXES`, or a
        comma-separated name string.
    scale:
        Workload scale factor forwarded to the trace builders.
    num_shards:
        Shard counts — a full matrix axis, so sharded and unsharded
        executions of the same scenario can be compared cell for cell.
    shard_rebalance:
        Whether sharded cells rebalance capacity between shards per bin.
    tenant_counts:
        Tenant-group counts — a full matrix axis: each entry ``N > 0``
        splits the query set round-robin across ``N`` declared tenants
        (two-tier allocation, per-tenant accounting); ``0`` is the classic
        untenanted system.
    base_seed:
        Root of the deterministic per-cell seed derivation.
    """

    traces: Sequence[str] = ("cesca",)
    overloads: Sequence[float] = (0.3,)
    modes: Sequence[str] = ("predictive",)
    strategies: Sequence[str] = ("eq_srates",)
    predictors: Sequence[str] = ("mlr",)
    queries: Sequence[str] = DEFAULT_QUERY_SET
    scale: float = 1.0
    time_bin: float = runner.TIME_BIN
    num_shards: Sequence[int] = (1,)
    shard_rebalance: bool = True
    tenant_counts: Sequence[int] = (0,)
    base_seed: int = 0

    def __post_init__(self) -> None:
        # Every axis is validated up front: a typo must fail at construction
        # with a helpful message, not minutes later inside a pool worker.
        from ..core.fairness import get_strategy
        from ..core.prediction import make_predictor
        from ..queries import parse_query_specs
        from ..queries import QuerySpec
        if isinstance(self.queries, str):
            # A named mix, or a comma-separated list of registry names.
            resolved = scenarios.QUERY_MIXES.get(self.queries)
            if resolved is None:
                resolved = tuple(part.strip()
                                 for part in self.queries.split(",")
                                 if part.strip())
            self.queries = tuple(resolved)
        # Registry names stay plain strings (the historical cell shape);
        # richer entries (spec dicts, (name, kwargs) pairs) canonicalise to
        # hashable QuerySpec objects so cells can still group and pickle.
        self.queries = tuple(
            spec if isinstance(spec, str) else QuerySpec.parse(spec)
            for spec in self.queries)
        parse_query_specs(self.queries)  # eager validation, incl. dup names
        for trace in self.traces:
            if trace not in scenarios.WORKLOADS:
                raise KeyError(f"unknown workload {trace!r}; available: "
                               f"{sorted(scenarios.WORKLOADS)}")
        for overload in self.overloads:
            if not 0.0 <= float(overload) < 1.0:
                raise ValueError("overload K must be in [0, 1)")
        for mode in self.modes:
            canonical = MODE_ALIASES.get(mode, mode)
            if canonical not in MODES:
                raise ValueError(f"unknown mode {mode!r}; valid modes: "
                                 f"{MODES} (aliases: {sorted(MODE_ALIASES)})")
        for strategy in self.strategies:
            get_strategy(strategy)
        for predictor in self.predictors:
            make_predictor(predictor)
        for shards in self.num_shards:
            if int(shards) < 1:
                raise ValueError("num_shards entries must be >= 1")
        for tenants in self.tenant_counts:
            if int(tenants) < 0:
                raise ValueError("tenant_counts entries must be >= 0")
            if int(tenants) > len(self.queries):
                raise ValueError(
                    f"tenant_counts entry {int(tenants)} exceeds the "
                    f"{len(self.queries)} queries available to spread "
                    "across tenants")

    def cells(self) -> List[ScenarioCell]:
        """Expand the grid into deterministically-seeded cells."""
        expanded: List[ScenarioCell] = []
        for (trace, overload, mode, strategy, predictor, shards,
             tenants) in product(
                self.traces, self.overloads, self.modes, self.strategies,
                self.predictors, self.num_shards, self.tenant_counts):
            cell = ScenarioCell(
                trace=trace,
                overload=float(overload),
                mode=MODE_ALIASES.get(mode, mode),
                strategy=strategy,
                predictor=predictor,
                queries=tuple(self.queries),
                scale=float(self.scale),
                time_bin=float(self.time_bin),
                num_shards=int(shards),
                shard_rebalance=bool(self.shard_rebalance),
                tenant_count=int(tenants),
            )
            expanded.append(replace(
                cell, seed=derive_seed(self.base_seed, cell.cell_id)))
        return expanded

    def __len__(self) -> int:
        return (len(self.traces) * len(self.overloads) * len(self.modes) *
                len(self.strategies) * len(self.predictors) *
                len(self.num_shards) * len(self.tenant_counts))

    def trace_seed(self, trace: str) -> int:
        """Seed used to synthesise a workload trace of this matrix."""
        return derive_seed(self.base_seed, f"trace:{trace}")


# ----------------------------------------------------------------------
# Cell execution (runs in worker processes)
# ----------------------------------------------------------------------
#: Per-process memo of synthesised traces, keyed by (name, seed, scale).
#: Populated in the parent before the pool forks, so workers inherit the
#: traces copy-on-write instead of re-synthesising them.
_TRACE_MEMO: Dict[Tuple[str, int, float], PacketTrace] = {}


def _memoised_trace(name: str, seed: int, scale: float) -> PacketTrace:
    key = (name, seed, scale)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = scenarios.build_workload(name, seed=seed, scale=scale)
        _TRACE_MEMO[key] = trace
    return trace


def clear_caches() -> None:
    """Drop memoised traces (and the derived caches they pin).

    Benchmarks call this to time cold starts; long-lived processes sweeping
    many distinct (workload, seed, scale) combinations should call it
    between sweeps, since the memo grows with every distinct trace.
    """
    _TRACE_MEMO.clear()


def _execute_cell(job: Tuple[ScenarioCell, int, float]) -> ExecutionResult:
    """Run one cell; pure function of the job spec (bit-reproducible)."""
    cell, trace_seed, capacity = job
    trace = _memoised_trace(cell.trace, trace_seed, cell.scale)
    return runner.run_system(
        cell.queries, trace, capacity * (1.0 - cell.overload),
        time_bin=cell.time_bin, config=cell.to_config())


# ----------------------------------------------------------------------
# Structured results
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """Execution summary of one cell, joined against its reference."""

    cell: ScenarioCell
    capacity: float
    result: ExecutionResult
    drop_fraction: float
    mean_sampling_rate: float
    accuracy: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        values = list(self.accuracy.values())
        return float(np.mean(values)) if values else 1.0

    def to_row(self) -> Dict[str, object]:
        return {
            "trace": self.cell.trace,
            "overload": self.cell.overload,
            "mode": self.cell.mode,
            "strategy": self.cell.strategy,
            "predictor": self.cell.predictor,
            "num_shards": self.cell.num_shards,
            "tenant_count": self.cell.tenant_count,
            "drop_fraction": self.drop_fraction,
            "mean_sampling_rate": self.mean_sampling_rate,
            "mean_accuracy": self.mean_accuracy,
        }


class MatrixResult:
    """All cell results of a matrix run, with slicing helpers."""

    def __init__(self, cells: List[CellResult],
                 references: Dict[Tuple, ExecutionResult]) -> None:
        self.cells = cells
        self.references = references

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def select(self, **axes) -> List[CellResult]:
        """Cells whose coordinates match every given axis value.

        ``result.select(trace="ddos", mode="predictive")``
        """
        selected = []
        for cell_result in self.cells:
            if all(getattr(cell_result.cell, axis) == value
                   for axis, value in axes.items()):
                selected.append(cell_result)
        return selected

    def reference_for(self, cell: ScenarioCell) -> ExecutionResult:
        return self.references[cell.group_key()]

    def to_rows(self) -> List[Dict[str, object]]:
        return [cell_result.to_row() for cell_result in self.cells]

    def summary(self) -> str:
        from . import reporting
        return reporting.format_table(
            self.to_rows(),
            ["trace", "overload", "mode", "strategy", "drop_fraction",
             "mean_sampling_rate", "mean_accuracy"],
            title="Scenario matrix")


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class ParallelRunner:
    """Executes a :class:`ScenarioMatrix`, sharding cells across processes.

    Shared work is hoisted out of the cells first: each trace group is
    synthesised and calibrated exactly once (the naive serial idiom repeats
    both per cell).  The per-cell executions are then either run inline
    (``n_workers <= 1``) or submitted to a ``ProcessPoolExecutor``; both
    paths call the same pure job function, so their results are identical
    bit for bit.

    Parameters
    ----------
    n_workers:
        Pool size; ``None`` uses the machine's CPU count, ``0``/``1`` runs
        serially in-process.
    quantile:
        Calibration quantile handed to
        :func:`~repro.experiments.runner.calibrate_capacity`.
    respect_cores:
        Clamp the pool to the host's core count (default).  Pass ``False``
        to force a pool of exactly ``n_workers`` processes, e.g. to exercise
        the fork path on a single-core machine.
    """

    def __init__(self, n_workers: Optional[int] = None,
                 quantile: float = 0.95,
                 respect_cores: bool = True) -> None:
        self.n_workers = (os.cpu_count() or 1) if n_workers is None \
            else int(n_workers)
        self.quantile = float(quantile)
        self.respect_cores = bool(respect_cores)

    # ------------------------------------------------------------------
    def run(self, matrix: ScenarioMatrix) -> MatrixResult:
        """Run every cell of the matrix and join accuracies per group."""
        cells = matrix.cells()
        contexts = self._prepare_groups(matrix, cells)
        jobs = [(cell, matrix.trace_seed(cell.trace),
                 contexts[cell.group_key()][0]) for cell in cells]
        executions = self._execute(jobs)
        references = {key: reference
                      for key, (_, reference) in contexts.items()}
        results: List[CellResult] = []
        for cell, execution in zip(cells, executions):
            capacity, reference = contexts[cell.group_key()]
            results.append(CellResult(
                cell=cell,
                capacity=capacity,
                result=execution,
                drop_fraction=execution.drop_fraction,
                mean_sampling_rate=execution.mean_sampling_rate(),
                accuracy=runner.accuracy_by_query(execution, reference),
            ))
        return MatrixResult(results, references)

    # ------------------------------------------------------------------
    def _prepare_groups(self, matrix: ScenarioMatrix,
                        cells: Iterable[ScenarioCell]
                        ) -> Dict[Tuple, Tuple[float, ExecutionResult]]:
        """Synthesise and calibrate each trace group once."""
        contexts: Dict[Tuple, Tuple[float, ExecutionResult]] = {}
        for cell in cells:
            key = cell.group_key()
            if key in contexts:
                continue
            trace = _memoised_trace(cell.trace, matrix.trace_seed(cell.trace),
                                    cell.scale)
            capacity, reference = runner.calibrate_capacity(
                cell.queries, trace, time_bin=cell.time_bin,
                quantile=self.quantile)
            contexts[key] = (capacity, reference)
        return contexts

    def _execute(self, jobs: List[Tuple[ScenarioCell, int, float]]
                 ) -> List[ExecutionResult]:
        # Results do not depend on the pool size (or on whether a pool is
        # used at all) — every path runs the same pure job function, and
        # the shared fork-pool helper clamps the pool to the host's cores
        # unless the caller opts out.
        return self.map(_execute_cell, jobs)

    # ------------------------------------------------------------------
    def map(self, fn, jobs: Sequence, require_fork: bool = False) -> List:
        """Run ``fn`` over ``jobs`` on this runner's process pool.

        The generic pool surface behind :meth:`run`, reused by other
        fan-out layers (the fleet runner executes its per-node jobs
        through the fleet's ``ParallelRunner``): same worker count, same
        core clamping, same serial fallback for ``n_workers <= 1`` — and
        therefore the same bit-reproducibility contract, provided ``fn``
        is a pure top-level function of its job.  ``require_fork=True``
        refuses to silently fall back to serial execution on hosts
        without the fork start method.
        """
        return fork_pool_map(fn, list(jobs), self.n_workers,
                             respect_cores=self.respect_cores,
                             require_fork=require_fork)


def run_matrix(matrix: ScenarioMatrix,
               n_workers: Optional[int] = None) -> MatrixResult:
    """Convenience wrapper: ``ParallelRunner(n_workers).run(matrix)``."""
    return ParallelRunner(n_workers=n_workers).run(matrix)


__all__ = [
    "DEFAULT_QUERY_SET",
    "CellResult",
    "MatrixResult",
    "ParallelRunner",
    "ScenarioCell",
    "ScenarioMatrix",
    "clear_caches",
    "derive_seed",
    "run_matrix",
]
