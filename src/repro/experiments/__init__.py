"""Experiment harness: one function per table and figure of the evaluation.

The mapping between the paper's tables/figures, the functions here and the
benchmark targets lives in ``DESIGN.md`` (Section 4); measured-versus-paper
results are recorded in ``EXPERIMENTS.md``.
"""

from . import (chapter2, chapter3, chapter4, chapter5, chapter6, parallel,
               reporting, runner, scenarios)

__all__ = [
    "chapter2",
    "chapter3",
    "chapter4",
    "chapter5",
    "chapter6",
    "parallel",
    "reporting",
    "runner",
    "scenarios",
]
