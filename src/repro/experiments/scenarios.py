"""Standard experiment scenarios: trace presets and query sets.

Experiments share a small number of workload definitions; keeping them here
guarantees that, e.g., the Chapter 4 figures and Table 4.1 describe the same
execution.  The ``scale`` parameter shrinks or stretches trace durations so
the whole benchmark suite stays laptop-sized; the shapes of the results do
not depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..monitor.packet import PacketTrace
from ..queries import EVALUATION_NINE, VALIDATION_SEVEN
from ..traffic import AnomalyWindow, ddos_attack, flow_spike, inject, syn_flood
from ..traffic.models import load_preset

#: Queries robust to sampling used in the Table 4.1 accuracy comparison.
SAMPLING_ROBUST_FIVE: Tuple[str, ...] = (
    "application", "counter", "flows", "high-watermark", "top-k",
)

#: Query set of the Chapter 6 validation (Table 6.1): a mix of cheap,
#: ranking and payload-inspection queries including the custom-shedding
#: P2P detector.
CUSTOM_VALIDATION_SET: Tuple[str, ...] = (
    "counter", "flows", "high-watermark", "top-k", "p2p-detector",
)

#: Default durations (seconds of generated traffic) at scale 1.0.
DEFAULT_DURATIONS: Dict[str, float] = {
    "short": 6.0,
    "medium": 12.0,
    "long": 24.0,
}


def scaled_duration(kind: str, scale: float = 1.0) -> float:
    """Duration of a named workload size, scaled by ``scale``."""
    return DEFAULT_DURATIONS[kind] * float(scale)


def header_trace(seed: int = 1, duration: Optional[float] = None,
                 scale: float = 1.0) -> PacketTrace:
    """CESCA-I-like header-only trace."""
    if duration is None:
        duration = scaled_duration("medium", scale)
    return load_preset("CESCA-I", seed=seed, duration=duration)


def payload_trace(seed: int = 2, duration: Optional[float] = None,
                  scale: float = 1.0) -> PacketTrace:
    """CESCA-II-like full-payload trace (needed by payload queries)."""
    if duration is None:
        duration = scaled_duration("medium", scale)
    return load_preset("CESCA-II", seed=seed, duration=duration)


def backbone_traces(seed: int = 3, duration: Optional[float] = None,
                    scale: float = 1.0) -> Dict[str, PacketTrace]:
    """ABILENE- and CENIC-like header traces (Figure 3.8)."""
    if duration is None:
        duration = scaled_duration("short", scale)
    return {
        "ABILENE": load_preset("ABILENE", seed=seed, duration=duration),
        "CENIC": load_preset("CENIC", seed=seed + 1, duration=duration),
    }


def ddos_trace(seed: int = 4, duration: Optional[float] = None,
               scale: float = 1.0, on_off: bool = True,
               packets_per_second: float = 12000.0) -> PacketTrace:
    """Payload trace with a spoofed-source DDoS burst in the middle.

    With ``on_off`` the attack goes idle every other second, reproducing the
    deliberately hard-to-predict workload of Figures 3.13-3.15.
    """
    if duration is None:
        duration = scaled_duration("medium", scale)
    base = header_trace(seed=seed, duration=duration)
    window = AnomalyWindow(start=duration * 0.3, duration=duration * 0.4)
    attack = ddos_attack(window, packets_per_second=packets_per_second,
                         on_off_period=2.0 if on_off else None, seed=seed + 1)
    return inject(base, attack, name="cesca-ddos")


def syn_flood_trace(seed: int = 5, duration: Optional[float] = None,
                    scale: float = 1.0,
                    packets_per_second: float = 10000.0) -> PacketTrace:
    """Header trace with a SYN-flood burst (Figures 4.5/4.6)."""
    if duration is None:
        duration = scaled_duration("medium", scale)
    base = header_trace(seed=seed, duration=duration)
    window = AnomalyWindow(start=duration * 0.35, duration=duration * 0.3)
    attack = syn_flood(window, packets_per_second=packets_per_second,
                       seed=seed + 1)
    return inject(base, attack, name="cesca-synflood")


def flow_anomaly_trace(seed: int = 6, duration: Optional[float] = None,
                       scale: float = 1.0) -> PacketTrace:
    """Header trace with a flow-count spike (Figure 3.1)."""
    if duration is None:
        duration = scaled_duration("medium", scale)
    base = header_trace(seed=seed, duration=duration)
    window = AnomalyWindow(start=duration * 0.4, duration=duration * 0.25)
    anomaly = flow_spike(window, flows_per_second=4000.0, seed=seed + 1)
    return inject(base, anomaly, name="cesca-flowspike")


__all__ = [
    "CUSTOM_VALIDATION_SET",
    "EVALUATION_NINE",
    "SAMPLING_ROBUST_FIVE",
    "VALIDATION_SEVEN",
    "backbone_traces",
    "ddos_trace",
    "flow_anomaly_trace",
    "header_trace",
    "payload_trace",
    "scaled_duration",
    "syn_flood_trace",
]
