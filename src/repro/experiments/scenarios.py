"""Standard experiment scenarios: trace presets and query sets.

Experiments share a small number of workload definitions; keeping them here
guarantees that, e.g., the Chapter 4 figures and Table 4.1 describe the same
execution.  The ``scale`` parameter shrinks or stretches trace durations so
the whole benchmark suite stays laptop-sized; the shapes of the results do
not depend on it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..monitor.packet import PacketTrace
from ..queries import EVALUATION_NINE, VALIDATION_SEVEN
from ..traffic import (AnomalyWindow, ddos_attack, flash_crowd, flow_spike,
                       inject, port_scan, syn_flood)
from ..traffic.models import load_preset

#: Queries robust to sampling used in the Table 4.1 accuracy comparison.
SAMPLING_ROBUST_FIVE: Tuple[str, ...] = (
    "application", "counter", "flows", "high-watermark", "top-k",
)

#: Query set of the Chapter 6 validation (Table 6.1): a mix of cheap,
#: ranking and payload-inspection queries including the custom-shedding
#: P2P detector.
CUSTOM_VALIDATION_SET: Tuple[str, ...] = (
    "counter", "flows", "high-watermark", "top-k", "p2p-detector",
)

#: Named query mixes addressable from the scenario matrix and the
#: ``python -m repro.replay --queries`` flag.  Values are anything
#: :func:`repro.queries.parse_query_specs` accepts — plain name tuples for
#: the paper's canonical sets, richer declarative specs for the mixes that
#: exercise multi-instance and filtered queries.
QUERY_MIXES: Dict[str, Tuple] = {
    "validation-seven": VALIDATION_SEVEN,
    "evaluation-nine": EVALUATION_NINE,
    "sampling-robust-five": SAMPLING_ROBUST_FIVE,
    "custom-validation": CUSTOM_VALIDATION_SET,
    # Per-protocol accounting: the same counter run thrice behind
    # different declarative filters, a mix no name tuple can express.
    "protocol-split": (
        {"kind": "counter", "kwargs": {"name": "counter-all"}},
        {"kind": "counter", "kwargs": {"name": "counter-tcp"},
         "filter": "tcp"},
        {"kind": "counter", "kwargs": {"name": "counter-udp"},
         "filter": "udp"},
        "flows",
    ),
    # Ranking-heavy mix with two top-k widths side by side.
    "rankings": (
        {"kind": "top-k", "kwargs": {"k": 5, "name": "top-5"}},
        {"kind": "top-k", "kwargs": {"k": 20, "name": "top-20"}},
        "super-sources",
        "autofocus",
    ),
}


def query_mix(name: str) -> Tuple:
    """The spec tuple of a named query mix."""
    if name not in QUERY_MIXES:
        raise KeyError(f"unknown query mix {name!r}; "
                       f"available: {sorted(QUERY_MIXES)}")
    return QUERY_MIXES[name]


#: Default durations (seconds of generated traffic) at scale 1.0.
DEFAULT_DURATIONS: Dict[str, float] = {
    "short": 6.0,
    "medium": 12.0,
    "long": 24.0,
}


def scaled_duration(kind: str, scale: float = 1.0) -> float:
    """Duration of a named workload size, scaled by ``scale``."""
    return DEFAULT_DURATIONS[kind] * float(scale)


def header_trace(seed: int = 1, duration: Optional[float] = None,
                 scale: float = 1.0) -> PacketTrace:
    """CESCA-I-like header-only trace."""
    if duration is None:
        duration = scaled_duration("medium", scale)
    return load_preset("CESCA-I", seed=seed, duration=duration)


def payload_trace(seed: int = 2, duration: Optional[float] = None,
                  scale: float = 1.0) -> PacketTrace:
    """CESCA-II-like full-payload trace (needed by payload queries)."""
    if duration is None:
        duration = scaled_duration("medium", scale)
    return load_preset("CESCA-II", seed=seed, duration=duration)


def backbone_traces(seed: int = 3, duration: Optional[float] = None,
                    scale: float = 1.0) -> Dict[str, PacketTrace]:
    """ABILENE- and CENIC-like header traces (Figure 3.8)."""
    if duration is None:
        duration = scaled_duration("short", scale)
    return {
        "ABILENE": load_preset("ABILENE", seed=seed, duration=duration),
        "CENIC": load_preset("CENIC", seed=seed + 1, duration=duration),
    }


def ddos_trace(seed: int = 4, duration: Optional[float] = None,
               scale: float = 1.0, on_off: bool = True,
               packets_per_second: float = 12000.0) -> PacketTrace:
    """Payload trace with a spoofed-source DDoS burst in the middle.

    With ``on_off`` the attack goes idle every other second, reproducing the
    deliberately hard-to-predict workload of Figures 3.13-3.15.
    """
    if duration is None:
        duration = scaled_duration("medium", scale)
    base = header_trace(seed=seed, duration=duration)
    window = AnomalyWindow(start=duration * 0.3, duration=duration * 0.4)
    attack = ddos_attack(window, packets_per_second=packets_per_second,
                         on_off_period=2.0 if on_off else None, seed=seed + 1)
    return inject(base, attack, name="cesca-ddos")


def syn_flood_trace(seed: int = 5, duration: Optional[float] = None,
                    scale: float = 1.0,
                    packets_per_second: float = 10000.0) -> PacketTrace:
    """Header trace with a SYN-flood burst (Figures 4.5/4.6)."""
    if duration is None:
        duration = scaled_duration("medium", scale)
    base = header_trace(seed=seed, duration=duration)
    window = AnomalyWindow(start=duration * 0.35, duration=duration * 0.3)
    attack = syn_flood(window, packets_per_second=packets_per_second,
                       seed=seed + 1)
    return inject(base, attack, name="cesca-synflood")


def flow_anomaly_trace(seed: int = 6, duration: Optional[float] = None,
                       scale: float = 1.0) -> PacketTrace:
    """Header trace with a flow-count spike (Figure 3.1)."""
    if duration is None:
        duration = scaled_duration("medium", scale)
    base = header_trace(seed=seed, duration=duration)
    window = AnomalyWindow(start=duration * 0.4, duration=duration * 0.25)
    anomaly = flow_spike(window, flows_per_second=4000.0, seed=seed + 1)
    return inject(base, anomaly, name="cesca-flowspike")


def flash_crowd_trace(seed: int = 7, duration: Optional[float] = None,
                      scale: float = 1.0,
                      packets_per_second: float = 9000.0) -> PacketTrace:
    """Header trace with a legitimate flash crowd towards one server.

    Packet and byte rates surge while the flow count grows modestly, the
    mirror workload of a SYN flood: load shedding must engage without the
    flow-explosion signature the flood-style anomalies provide.
    """
    if duration is None:
        duration = scaled_duration("medium", scale)
    base = header_trace(seed=seed, duration=duration)
    window = AnomalyWindow(start=duration * 0.3, duration=duration * 0.45)
    crowd = flash_crowd(window, packets_per_second=packets_per_second,
                        seed=seed + 1)
    return inject(base, crowd, name="cesca-flashcrowd")


def port_scan_trace(seed: int = 8, duration: Optional[float] = None,
                    scale: float = 1.0,
                    probes_per_second: float = 7000.0) -> PacketTrace:
    """Header trace with a port-scan storm sweeping the local subnet.

    Destination-side aggregates (ports x protocol, addresses x ports) explode
    while source-side aggregates stay flat, exercising feature selection on
    the half of Table 3.1 the flood anomalies leave quiet.
    """
    if duration is None:
        duration = scaled_duration("medium", scale)
    base = header_trace(seed=seed, duration=duration)
    window = AnomalyWindow(start=duration * 0.25, duration=duration * 0.5)
    storm = port_scan(window, probes_per_second=probes_per_second,
                      seed=seed + 1)
    return inject(base, storm, name="cesca-portscan")


def mixed_ddos_p2p_trace(seed: int = 9, duration: Optional[float] = None,
                         scale: float = 1.0,
                         ddos_packets_per_second: float = 8000.0,
                         churn_flows_per_second: float = 2500.0) -> PacketTrace:
    """Header trace with an on/off DDoS plus concurrent P2P flow churn.

    Two overlapping anomalies with different signatures — a spoofed on/off
    flood and a storm of short-lived BitTorrent-port flows — produce the
    hardest-to-predict load of the preset workloads and give allocation
    strategies genuinely competing demands to arbitrate.
    """
    if duration is None:
        duration = scaled_duration("medium", scale)
    base = header_trace(seed=seed, duration=duration)
    ddos_window = AnomalyWindow(start=duration * 0.25, duration=duration * 0.4)
    churn_window = AnomalyWindow(start=duration * 0.45,
                                 duration=duration * 0.45)
    attack = ddos_attack(ddos_window,
                         packets_per_second=ddos_packets_per_second,
                         on_off_period=2.0, seed=seed + 1)
    churn = flow_spike(churn_window, flows_per_second=churn_flows_per_second,
                       packets_per_flow=3, dst_port=6881, seed=seed + 2,
                       name="p2p-churn")
    return inject(base, attack, churn, name="cesca-ddos-p2p")


#: Workloads addressable by name from the scenario matrix.  Every builder
#: accepts ``(seed, duration, scale)`` and returns a :class:`PacketTrace`;
#: new workloads only need an entry here to become matrix axes.
WORKLOADS: Dict[str, "object"] = {
    "cesca": header_trace,
    "cesca-payload": payload_trace,
    "ddos": ddos_trace,
    "syn-flood": syn_flood_trace,
    "flow-spike": flow_anomaly_trace,
    "flash-crowd": flash_crowd_trace,
    "port-scan": port_scan_trace,
    "mixed-ddos-p2p": mixed_ddos_p2p_trace,
}


def build_workload(name: str, seed: Optional[int] = None,
                   duration: Optional[float] = None,
                   scale: float = 1.0) -> PacketTrace:
    """Build a named workload trace (used by the parallel scenario engine)."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; "
                       f"available: {sorted(WORKLOADS)}")
    builder = WORKLOADS[name]
    kwargs = {"duration": duration, "scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return builder(**kwargs)


__all__ = [
    "CUSTOM_VALIDATION_SET",
    "EVALUATION_NINE",
    "QUERY_MIXES",
    "SAMPLING_ROBUST_FIVE",
    "VALIDATION_SEVEN",
    "WORKLOADS",
    "query_mix",
    "backbone_traces",
    "build_workload",
    "ddos_trace",
    "flash_crowd_trace",
    "flow_anomaly_trace",
    "header_trace",
    "mixed_ddos_p2p_trace",
    "payload_trace",
    "port_scan_trace",
    "scaled_duration",
    "syn_flood_trace",
]
