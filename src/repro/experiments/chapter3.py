"""Chapter 3 experiments: the prediction system.

Every public function regenerates one table or figure of the prediction
chapter.  All of them are built on :func:`repro.experiments.runner.collect_observations`:
the (features, cycles) pairs of a query on a trace are collected once and then
replayed against whatever predictor configuration the experiment sweeps,
which keeps even the parameter sweeps cheap.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.fcbf import selection_cost
from ..core.prediction import (EWMAPredictor, MLRPredictor, SLRPredictor)
from ..monitor.packet import PacketTrace
from ..queries import VALIDATION_SEVEN, make_query
from . import runner, scenarios


def _observations_for(query_names: Sequence[str], trace: PacketTrace
                      ) -> Dict[str, runner.QueryObservations]:
    return {name: runner.collect_observations(make_query(name), trace)
            for name in query_names}


# ----------------------------------------------------------------------
# Figure 3.1 — why a single volume metric is not enough
# ----------------------------------------------------------------------
def figure_3_1_unknown_query_anomaly(scale: float = 1.0,
                                     trace: Optional[PacketTrace] = None
                                     ) -> Dict[str, object]:
    """CPU usage of the flows query versus packets / bytes / flows over time.

    During the injected flow-count anomaly the packet and byte series stay
    roughly flat while the CPU usage tracks the number of 5-tuple flows —
    the observation motivating feature-based prediction.
    """
    if trace is None:
        trace = scenarios.flow_anomaly_trace(scale=scale)
    observations = runner.collect_observations(make_query("flows"), trace)
    packets = np.array([f["packets"] for f in observations.features])
    byte_counts = np.array([f["bytes"] for f in observations.features])
    flows = np.array([f["five_tuple_unique"] for f in observations.features])
    cycles = observations.cycles_array()

    def corr(a: np.ndarray, b: np.ndarray) -> float:
        if a.std() == 0 or b.std() == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    return {
        "series": {
            "cycles": cycles,
            "packets": packets,
            "bytes": byte_counts,
            "five_tuple_flows": flows,
        },
        "correlation_with_cycles": {
            "packets": corr(packets, cycles),
            "bytes": corr(byte_counts, cycles),
            "five_tuple_flows": corr(flows, cycles),
        },
    }


# ----------------------------------------------------------------------
# Figures 3.3 / 3.4 — SLR versus MLR for the flows query
# ----------------------------------------------------------------------
def figure_3_4_slr_vs_mlr(scale: float = 1.0,
                          trace: Optional[PacketTrace] = None
                          ) -> Dict[str, object]:
    """Relative prediction error of SLR (packets) versus MLR (flows query)."""
    if trace is None:
        trace = scenarios.header_trace(scale=scale)
    observations = runner.collect_observations(make_query("flows"), trace)
    slr = runner.evaluate_predictor(SLRPredictor(feature="packets"), observations)
    mlr = runner.evaluate_predictor(MLRPredictor(), observations)
    return {
        "slr_error_series": slr.series(),
        "mlr_error_series": mlr.series(),
        "slr_mean_error": slr.mean,
        "mlr_mean_error": mlr.mean,
    }


# ----------------------------------------------------------------------
# Figures 3.5 / 3.6 — history length and FCBF threshold sweeps
# ----------------------------------------------------------------------
def figure_3_5_parameter_sweep(
    scale: float = 1.0,
    histories: Sequence[int] = (10, 30, 60, 120),
    thresholds: Sequence[float] = (0.0, 0.3, 0.6, 0.8),
    query_names: Sequence[str] = ("counter", "flows", "top-k", "trace"),
    trace: Optional[PacketTrace] = None,
) -> Dict[str, object]:
    """Prediction error and cost versus MLR history and FCBF threshold."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    observations = _observations_for(query_names, trace)

    history_rows: List[Dict[str, float]] = []
    for history in histories:
        errors, costs = [], []
        for name in query_names:
            predictor = MLRPredictor(history=history)
            tracker = runner.evaluate_predictor(predictor, observations[name])
            errors.append(tracker.mean)
            costs.append(predictor.overhead_cycles)
        history_rows.append({
            "history": float(history),
            "mean_error": float(np.mean(errors)),
            "mean_cost_cycles": float(np.mean(costs)),
        })

    threshold_rows: List[Dict[str, float]] = []
    per_query_threshold: Dict[str, Dict[float, float]] = {n: {} for n in query_names}
    for threshold in thresholds:
        errors, costs = [], []
        for name in query_names:
            predictor = MLRPredictor(fcbf_threshold=threshold)
            tracker = runner.evaluate_predictor(predictor, observations[name])
            errors.append(tracker.mean)
            costs.append(predictor.overhead_cycles)
            per_query_threshold[name][float(threshold)] = tracker.mean
        threshold_rows.append({
            "threshold": float(threshold),
            "mean_error": float(np.mean(errors)),
            "mean_cost_cycles": float(np.mean(costs)),
        })
    return {
        "history_sweep": history_rows,
        "threshold_sweep": threshold_rows,
        "per_query_threshold_error": per_query_threshold,
    }


# ----------------------------------------------------------------------
# Figures 3.7 / 3.8 and Table 3.2 — prediction error per trace and query
# ----------------------------------------------------------------------
def figure_3_7_error_over_time(scale: float = 1.0,
                               query_names: Sequence[str] = VALIDATION_SEVEN,
                               traces: Optional[Dict[str, PacketTrace]] = None,
                               ) -> Dict[str, object]:
    """Average and maximum MLR+FCBF prediction error over time per trace."""
    if traces is None:
        traces = {
            "CESCA-I": scenarios.header_trace(scale=scale),
            "CESCA-II": scenarios.payload_trace(scale=scale),
        }
        traces.update(scenarios.backbone_traces(scale=scale))
    per_trace: Dict[str, Dict[str, object]] = {}
    for trace_name, trace in traces.items():
        observations = _observations_for(query_names, trace)
        error_matrix = []
        for name in query_names:
            tracker = runner.evaluate_predictor(MLRPredictor(),
                                                observations[name])
            error_matrix.append(tracker.series())
        length = min(len(series) for series in error_matrix)
        stacked = np.vstack([series[:length] for series in error_matrix])
        per_trace[trace_name] = {
            "average_error_series": stacked.mean(axis=0),
            "max_error_series": stacked.max(axis=0),
            "average_error": float(stacked.mean()),
            "max_error": float(stacked.max()),
        }
    return per_trace


def table_3_2_error_by_query(scale: float = 1.0,
                             query_names: Sequence[str] = VALIDATION_SEVEN,
                             trace: Optional[PacketTrace] = None,
                             ) -> Dict[str, object]:
    """Per-query prediction error and most frequently selected features."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    rows = []
    for name in query_names:
        observations = runner.collect_observations(make_query(name), trace)
        predictor = MLRPredictor()
        selected_counter: Counter = Counter()
        tracker = runner.evaluate_predictor(predictor, observations)
        # Re-run to record which features were selected at each step.
        predictor.reset()
        for index, (features, cycles) in enumerate(
                zip(observations.features, observations.cycles)):
            if index >= 2:
                predictor.predict(features)
                selected_counter.update(predictor.selected_features)
            predictor.observe(features, cycles)
        top_features = [feat for feat, _ in selected_counter.most_common(3)]
        rows.append({
            "query": name,
            "mean_error": tracker.mean,
            "std_error": tracker.std,
            "selected_features": ", ".join(top_features),
        })
    return {"trace": trace.name, "rows": rows}


# ----------------------------------------------------------------------
# Figures 3.9-3.12 and Table 3.3 — EWMA vs SLR vs MLR+FCBF
# ----------------------------------------------------------------------
def figure_3_11_baseline_comparison(scale: float = 1.0,
                                    query_names: Sequence[str] = VALIDATION_SEVEN,
                                    trace: Optional[PacketTrace] = None,
                                    ewma_alpha: float = 0.3,
                                    ) -> Dict[str, object]:
    """EWMA, SLR and MLR+FCBF error series averaged over the query set."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    observations = _observations_for(query_names, trace)
    methods = {
        "ewma": lambda: EWMAPredictor(alpha=ewma_alpha),
        "slr": lambda: SLRPredictor(feature="packets"),
        "mlr": lambda: MLRPredictor(),
    }
    series: Dict[str, np.ndarray] = {}
    means: Dict[str, float] = {}
    for method, factory in methods.items():
        error_matrix = []
        for name in query_names:
            tracker = runner.evaluate_predictor(factory(), observations[name])
            error_matrix.append(tracker.series())
        length = min(len(s) for s in error_matrix)
        stacked = np.vstack([s[:length] for s in error_matrix])
        series[method] = stacked.mean(axis=0)
        means[method] = float(stacked.mean())
    return {"error_series": series, "mean_error": means}


def table_3_3_error_stats(scale: float = 1.0,
                          query_names: Sequence[str] = VALIDATION_SEVEN,
                          trace: Optional[PacketTrace] = None,
                          ewma_alpha: float = 0.3) -> Dict[str, object]:
    """Per-query EWMA / SLR / MLR+FCBF error statistics (Table 3.3)."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    observations = _observations_for(query_names, trace)
    rows = []
    for name in query_names:
        ewma = runner.evaluate_predictor(EWMAPredictor(alpha=ewma_alpha),
                                         observations[name])
        slr = runner.evaluate_predictor(SLRPredictor(feature="packets"),
                                        observations[name])
        mlr = runner.evaluate_predictor(MLRPredictor(), observations[name])
        rows.append({
            "query": name,
            "ewma_mean": ewma.mean, "ewma_std": ewma.std,
            "slr_mean": slr.mean, "slr_std": slr.std,
            "mlr_mean": mlr.mean, "mlr_std": mlr.std,
        })
    summary = {
        "ewma": float(np.mean([row["ewma_mean"] for row in rows])),
        "slr": float(np.mean([row["slr_mean"] for row in rows])),
        "mlr": float(np.mean([row["mlr_mean"] for row in rows])),
    }
    return {"rows": rows, "mean_error": summary}


def figure_3_10_ewma_alpha_sweep(scale: float = 1.0,
                                 alphas: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
                                 query_names: Sequence[str] = ("counter", "flows",
                                                               "top-k", "trace"),
                                 trace: Optional[PacketTrace] = None,
                                 ) -> Dict[str, object]:
    """EWMA prediction error as a function of the weight alpha (Figure 3.10)."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    observations = _observations_for(query_names, trace)
    rows = []
    for alpha in alphas:
        errors = [runner.evaluate_predictor(EWMAPredictor(alpha=alpha),
                                            observations[name]).mean
                  for name in query_names]
        rows.append({"alpha": float(alpha), "mean_error": float(np.mean(errors))})
    return {"rows": rows}


# ----------------------------------------------------------------------
# Figures 3.13-3.15 — robustness against DDoS anomalies
# ----------------------------------------------------------------------
def figure_3_13_ddos_robustness(scale: float = 1.0,
                                trace: Optional[PacketTrace] = None
                                ) -> Dict[str, object]:
    """Predictor behaviour for the flows query under an on/off DDoS attack."""
    if trace is None:
        trace = scenarios.ddos_trace(scale=scale)
    observations = runner.collect_observations(make_query("flows"), trace)
    results = {}
    for method, predictor in (("ewma", EWMAPredictor()),
                              ("slr", SLRPredictor(feature="packets")),
                              ("mlr", MLRPredictor())):
        tracker = runner.evaluate_predictor(predictor, observations)
        results[method] = {
            "error_series": tracker.series(),
            "mean_error": tracker.mean,
            "p95_error": tracker.percentile(95),
        }
    results["cycles_series"] = observations.cycles_array()
    return results


# ----------------------------------------------------------------------
# Table 3.4 — prediction overhead breakdown
# ----------------------------------------------------------------------
def table_3_4_prediction_overhead(scale: float = 1.0,
                                  query_names: Sequence[str] = VALIDATION_SEVEN,
                                  trace: Optional[PacketTrace] = None,
                                  ) -> Dict[str, object]:
    """Share of cycles spent on feature extraction, FCBF and MLR."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    capacity, reference = runner.calibrate_capacity(query_names, trace)
    result = runner.run_system(query_names, trace, capacity, mode="predictive")
    query_cycles = result.series("query_cycles").sum()
    prediction_cycles = result.series("prediction_overhead").sum()
    system_cycles = result.series("system_overhead").sum()
    total = query_cycles + prediction_cycles + system_cycles
    # Within the prediction overhead, split extraction vs selection vs MLR
    # using the analytic cost models (the system charges their sum).
    sample_history = 60
    fcbf_share = selection_cost(sample_history, 42)
    mlr_share = 120.0 * sample_history * 3
    extraction_share = max(prediction_cycles / max(len(result.bins), 1) /
                           max(len(query_names), 1) - fcbf_share - mlr_share, 0.0)
    breakdown_total = extraction_share + fcbf_share + mlr_share
    return {
        "prediction_overhead_fraction": float(prediction_cycles / total) if total else 0.0,
        "rows": [
            {"phase": "feature extraction",
             "fraction_of_prediction": extraction_share / breakdown_total},
            {"phase": "fcbf", "fraction_of_prediction": fcbf_share / breakdown_total},
            {"phase": "mlr", "fraction_of_prediction": mlr_share / breakdown_total},
        ],
        "total_cycles": float(total),
        "prediction_cycles": float(prediction_cycles),
    }
