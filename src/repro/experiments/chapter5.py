"""Chapter 5 experiments: fairness of service and Nash equilibrium.

The chapter compares the two max-min fair strategies (``mmfs_cpu`` versus
``mmfs_pkt``) in simulation and on the real query set, studies the minimum
sampling rate constraints, and verifies the Nash-equilibrium property of the
allocation game.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import game
from ..core.fairness import QueryDemand, mmfs_cpu, mmfs_pkt
from ..monitor.packet import PacketTrace
from ..queries import EVALUATION_NINE
from . import runner, scenarios

#: Minimum sampling rates of Table 5.2 (used when callers do not sweep them).
TABLE_5_2_MIN_RATES: Dict[str, float] = {
    "application": 0.03, "autofocus": 0.69, "counter": 0.03, "flows": 0.05,
    "high-watermark": 0.15, "pattern-search": 0.10, "super-sources": 0.93,
    "top-k": 0.57, "trace": 0.10,
}


# ----------------------------------------------------------------------
# Figure 5.1 — simulated light/heavy comparison
# ----------------------------------------------------------------------
def _light_accuracy(rate: float) -> float:
    """Accuracy model of the light (counter-like) query used in Section 5.4."""
    return 0.0 if rate <= 0.0 else 1.0 - (1.0 - rate) * 0.05


def _heavy_accuracy(rate: float) -> float:
    """Accuracy model of the heavy (trace-like) query used in Section 5.4."""
    return float(rate)


def figure_5_1_simulation_surface(
    min_rates: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    overloads: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    n_light: int = 10, heavy_cost_factor: float = 10.0,
) -> Dict[str, object]:
    """Difference in accuracy between mmfs_pkt and mmfs_cpu (simulation).

    One heavy query (cost 10x, accuracy = sampling rate) runs against ten
    light queries (accuracy barely affected by sampling).  Positive values of
    the returned surfaces mean mmfs_pkt beats mmfs_cpu.
    """
    light_cost = 1.0
    heavy_cost = heavy_cost_factor * light_cost
    total_demand = heavy_cost + n_light * light_cost
    avg_diff = np.zeros((len(min_rates), len(overloads)))
    min_diff = np.zeros_like(avg_diff)
    for i, m in enumerate(min_rates):
        for j, k in enumerate(overloads):
            capacity = total_demand * (1.0 - k)
            demands = [QueryDemand("heavy", heavy_cost, m)]
            demands += [QueryDemand(f"light-{idx}", light_cost, m)
                        for idx in range(n_light)]
            per_strategy = {}
            for label, strategy in (("pkt", mmfs_pkt), ("cpu", mmfs_cpu)):
                allocation = strategy(demands, capacity)
                accs = [_heavy_accuracy(allocation.rate("heavy"))]
                accs += [_light_accuracy(allocation.rate(f"light-{idx}"))
                         for idx in range(n_light)]
                # Disabled queries contribute zero accuracy.
                accs = [a if name not in allocation.disabled else 0.0
                        for a, name in zip(accs, [d.name for d in demands])]
                per_strategy[label] = (float(np.mean(accs)), float(np.min(accs)))
            avg_diff[i, j] = per_strategy["pkt"][0] - per_strategy["cpu"][0]
            min_diff[i, j] = per_strategy["pkt"][1] - per_strategy["cpu"][1]
    return {
        "min_rates": list(min_rates),
        "overloads": list(overloads),
        "average_accuracy_difference": avg_diff,
        "minimum_accuracy_difference": min_diff,
    }


# ----------------------------------------------------------------------
# Figure 5.2 — the same comparison with real counter/trace queries
# ----------------------------------------------------------------------
def figure_5_2_real_surface(
    scale: float = 1.0,
    min_rates: Sequence[float] = (0.1, 0.5, 0.9),
    overloads: Sequence[float] = (0.2, 0.5, 0.8),
    n_counters: int = 4,
    trace: Optional[PacketTrace] = None,
) -> Dict[str, object]:
    """mmfs_pkt minus mmfs_cpu accuracy with one trace and several counters.

    Uses real executions of the monitoring system; the grid is coarser than
    the paper's 11x11 sweep to stay laptop-sized, but covers the same corners.
    """
    if trace is None:
        trace = scenarios.header_trace(scale=scale,
                                       duration=scenarios.scaled_duration(
                                           "short", scale))
    # One heavy (trace) query plus several light (counter) instances.
    query_specs = [("trace", {})] + [
        ("counter", {"name": f"counter-{index}"}) for index in range(n_counters)]
    base_capacity, reference = runner.calibrate_capacity(query_specs, trace)
    avg_diff = np.zeros((len(min_rates), len(overloads)))
    min_diff = np.zeros_like(avg_diff)
    for i, m in enumerate(min_rates):
        for j, k in enumerate(overloads):
            per_strategy = {}
            for label, strategy in (("pkt", "mmfs_pkt"), ("cpu", "mmfs_cpu")):
                result = runner.run_system(
                    query_specs, trace,
                    base_capacity * (1.0 - k), mode="predictive",
                    strategy=strategy)
                accs = runner.accuracy_by_query(result, reference)
                # Enforce the swept minimum sampling rate semantics: a query
                # whose average applied rate fell below m counts as zero.
                adjusted = []
                for name, acc in accs.items():
                    mean_rate = float(np.mean(result.rate_series(name)))
                    adjusted.append(acc if mean_rate >= m else 0.0)
                per_strategy[label] = (float(np.mean(adjusted)),
                                       float(np.min(adjusted)))
            avg_diff[i, j] = per_strategy["pkt"][0] - per_strategy["cpu"][0]
            min_diff[i, j] = per_strategy["pkt"][1] - per_strategy["cpu"][1]
    return {
        "min_rates": list(min_rates),
        "overloads": list(overloads),
        "average_accuracy_difference": avg_diff,
        "minimum_accuracy_difference": min_diff,
    }


# ----------------------------------------------------------------------
# Figure 5.3 / Table 5.2 — minimum sampling rates
# ----------------------------------------------------------------------
def table_5_2_min_srates(scale: float = 1.0,
                         query_names: Sequence[str] = ("counter", "flows",
                                                       "high-watermark",
                                                       "top-k", "autofocus"),
                         rates: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.6,
                                                   0.8, 1.0),
                         target_error: float = 0.05,
                         trace: Optional[PacketTrace] = None,
                         ) -> Dict[str, object]:
    """Accuracy versus sampling rate per query and the implied minimum rate.

    The minimum sampling rate of a query is the smallest swept rate whose
    mean error stays below ``target_error`` (5% in Section 5.5.2).
    """
    if trace is None:
        trace = scenarios.header_trace(scale=scale)
    rows = []
    curves: Dict[str, Dict[float, float]] = {}
    for name in query_names:
        curve = runner.accuracy_vs_sampling_rate(name, trace, rates)
        curves[name] = curve
        min_rate = 1.0
        for rate in sorted(curve):
            if 1.0 - curve[rate] <= target_error:
                min_rate = rate
                break
        rows.append({"query": name, "min_sampling_rate": float(min_rate)})
    return {"rows": rows, "curves": curves, "target_error": target_error}


# ----------------------------------------------------------------------
# Figure 5.4 / Table 5.2 — strategy comparison at increasing overload
# ----------------------------------------------------------------------
def figure_5_4_strategy_comparison(
    scale: float = 1.0,
    overloads: Sequence[float] = (0.2, 0.5, 0.8),
    query_names: Sequence[str] = EVALUATION_NINE,
    trace: Optional[PacketTrace] = None,
) -> Dict[str, object]:
    """Average and minimum accuracy of the five systems versus overload K.

    Systems compared: no_lshed (original), reactive, eq_srates, mmfs_cpu and
    mmfs_pkt, as in Figure 5.4 / Table 5.2.
    """
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    base_capacity, reference = runner.calibrate_capacity(query_names, trace)
    systems = (
        ("no_lshed", "original", None),
        ("reactive", "reactive", None),
        ("eq_srates", "predictive", "eq_srates"),
        ("mmfs_cpu", "predictive", "mmfs_cpu"),
        ("mmfs_pkt", "predictive", "mmfs_pkt"),
    )
    average: Dict[str, List[float]] = {name: [] for name, _, _ in systems}
    minimum: Dict[str, List[float]] = {name: [] for name, _, _ in systems}
    per_query_at_k: Dict[float, Dict[str, Dict[str, float]]] = {}
    for k in overloads:
        capacity = base_capacity * (1.0 - k)
        per_query_at_k[float(k)] = {}
        for label, mode, strategy in systems:
            result = runner.run_system(query_names, trace, capacity, mode=mode,
                                       strategy=strategy or "eq_srates")
            accs = runner.accuracy_by_query(result, reference)
            per_query_at_k[float(k)][label] = accs
            values = list(accs.values())
            average[label].append(float(np.mean(values)))
            minimum[label].append(float(np.min(values)))
    return {
        "overloads": list(overloads),
        "average_accuracy": average,
        "minimum_accuracy": minimum,
        "per_query_accuracy": per_query_at_k,
    }


def table_5_2_accuracy_at_k05(scale: float = 1.0,
                              query_names: Sequence[str] = EVALUATION_NINE,
                              trace: Optional[PacketTrace] = None,
                              ) -> Dict[str, object]:
    """Per-query accuracy of every system at K = 0.5 (Table 5.2)."""
    comparison = figure_5_4_strategy_comparison(scale=scale, overloads=(0.5,),
                                                query_names=query_names,
                                                trace=trace)
    at_k = comparison["per_query_accuracy"][0.5]
    rows = []
    for name in query_names:
        row = {"query": name,
               "min_sampling_rate": TABLE_5_2_MIN_RATES.get(name, 0.0)}
        for system, accs in at_k.items():
            row[system] = accs.get(name, 0.0)
        rows.append(row)
    return {"rows": rows, "comparison": comparison}


# ----------------------------------------------------------------------
# Figure 5.5 — accuracy over time for the autofocus query
# ----------------------------------------------------------------------
def figure_5_5_autofocus_over_time(scale: float = 1.0, overload: float = 0.2,
                                   trace: Optional[PacketTrace] = None,
                                   query_names: Sequence[str] = EVALUATION_NINE,
                                   ) -> Dict[str, object]:
    """Autofocus accuracy over time under light overload per strategy."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    base_capacity, reference = runner.calibrate_capacity(query_names, trace)
    capacity = base_capacity * (1.0 - overload)
    systems = (
        ("no_lshed", "original", "eq_srates"),
        ("eq_srates", "predictive", "eq_srates"),
        ("mmfs_cpu", "predictive", "mmfs_cpu"),
        ("mmfs_pkt", "predictive", "mmfs_pkt"),
    )
    series = {}
    means = {}
    for label, mode, strategy in systems:
        result = runner.run_system(query_names, trace, capacity, mode=mode,
                                   strategy=strategy)
        acc = runner.accuracy_series(result, reference, "autofocus")
        series[label] = acc
        means[label] = float(np.mean(acc)) if len(acc) else 0.0
    return {"accuracy_series": series, "mean_accuracy": means,
            "overload": overload}


# ----------------------------------------------------------------------
# Section 5.3 — Nash equilibrium
# ----------------------------------------------------------------------
def nash_equilibrium_check(n_players: int = 4, capacity: float = 1.0,
                           grid: int = 100, seed: int = 0,
                           ) -> Dict[str, object]:
    """Verify Theorem 5.1 numerically.

    Checks that the profile where everyone demands ``C/n`` is a Nash
    equilibrium, that obviously unfair profiles are not, and that
    best-response dynamics converge to the equal-share profile.
    """
    rng = np.random.default_rng(seed)
    equal = game.equilibrium_profile(n_players, capacity)
    equal_is_ne = game.is_nash_equilibrium(equal, capacity, grid=grid)
    greedy = [capacity] * n_players
    greedy_is_ne = game.is_nash_equilibrium(greedy, capacity, grid=grid)
    start = rng.uniform(0.05, 0.45, size=n_players) * capacity
    final, rounds, converged = game.best_response_dynamics(
        start, capacity, max_rounds=300, grid=grid)
    return {
        "equal_share_profile": equal.tolist(),
        "equal_share_is_nash": bool(equal_is_ne),
        "greedy_profile_is_nash": bool(greedy_is_ne),
        "dynamics_start": start.tolist(),
        "dynamics_final": final.tolist(),
        "dynamics_rounds": rounds,
        "dynamics_converged": bool(converged),
        "distance_to_equal_share": float(np.max(np.abs(final - equal))),
    }
