"""Chapter 2 experiment: per-query cost profile (Figure 2.2).

The paper reports the average CPU cycles per second consumed by each standard
query on the CESCA-II trace; the reproduction runs the same query set on the
CESCA-II-like synthetic trace and reports the same quantity from the
simulated cycle clock.  The expected *shape* is that the payload-inspection
queries (pattern-search, p2p-detector) dominate, the per-flow and ranking
queries sit in the middle and the plain counters are the cheapest.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..monitor.packet import PacketTrace
from ..queries import QUERY_CLASSES
from . import runner, scenarios


def figure_2_2_query_costs(trace: Optional[PacketTrace] = None,
                           scale: float = 1.0,
                           query_names=None) -> Dict[str, object]:
    """Average cycles per second of each standard query (Figure 2.2)."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    names = list(query_names) if query_names is not None else \
        sorted(QUERY_CLASSES)
    capacity, reference = runner.calibrate_capacity(names, trace)
    costs = runner.summarize_costs(reference, max(trace.duration, 1e-9))
    ranking = sorted(costs, key=costs.get, reverse=True)
    return {
        "trace": trace.name,
        "duration": trace.duration,
        "cycles_per_second": costs,
        "ranking": ranking,
        "rows": [{"query": name, "cycles_per_second": costs[name]}
                 for name in ranking],
    }
