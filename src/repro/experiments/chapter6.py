"""Chapter 6 experiments: custom load shedding.

These experiments exercise the delegation of load shedding to the queries
themselves (the P2P detector is the running example) and the enforcement
policy that keeps selfish and buggy queries from hurting everyone else.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..monitor.packet import PacketTrace
from ..monitor.system import MonitoringSystem
from ..queries import (BuggyP2PDetectorQuery, P2PDetectorQuery,
                       SelfishP2PDetectorQuery, make_query)
from . import runner, scenarios

#: Validation query set of Table 6.1.
CHAPTER6_QUERIES = scenarios.CUSTOM_VALIDATION_SET


def _p2p_spec(custom: bool) -> tuple:
    return ("p2p-detector", {"custom_shedding": custom})


def _chapter6_specs(custom: bool) -> List:
    """The Chapter 6 query set with the P2P detector in the requested mode."""
    specs: List = [name for name in CHAPTER6_QUERIES if name != "p2p-detector"]
    specs.append(_p2p_spec(custom))
    return specs


# ----------------------------------------------------------------------
# Figures 6.1 / 6.2 / 6.3 — packet sampling versus custom shedding
# ----------------------------------------------------------------------
def figure_6_1_custom_vs_sampling(scale: float = 1.0, overload: float = 0.5,
                                  trace: Optional[PacketTrace] = None,
                                  ) -> Dict[str, object]:
    """P2P detector accuracy and resource usage: packet sampling vs custom.

    Both configurations run the same query set at the same overload; only the
    P2P detector's shedding mechanism changes.  Custom (flow-wise, internal)
    shedding should retain noticeably more accuracy (Figure 6.2) while
    consuming a comparable amount of cycles (Figure 6.1).
    """
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    base_capacity, reference = runner.calibrate_capacity(
        _chapter6_specs(custom=False), trace)
    capacity = base_capacity * (1.0 - overload)
    results = {}
    for label, custom in (("packet_sampling", False), ("custom_shedding", True)):
        results[label] = runner.run_system(
            _chapter6_specs(custom), trace, capacity,
            config=runner.system_config(strategy="mmfs_pkt",
                                        support_custom_shedding=custom))
    errors = {
        label: runner.error_by_query(result, reference).get("p2p-detector", 1.0)
        for label, result in results.items()
    }
    cycles = {
        label: float(np.mean([
            record.query_cycles_by_query.get("p2p-detector", 0.0)
            for record in result.bins]))
        for label, result in results.items()
    }
    predicted = {
        label: float(np.mean(result.series("predicted_cycles")))
        for label, result in results.items()
    }
    return {
        "p2p_error": errors,
        "p2p_mean_cycles_per_bin": cycles,
        "mean_predicted_cycles_per_bin": predicted,
        "dropped_packets": {label: result.dropped_packets
                            for label, result in results.items()},
    }


def figure_6_3_enforcement_correction(scale: float = 1.0, overload: float = 0.5,
                                      trace: Optional[PacketTrace] = None,
                                      ) -> Dict[str, object]:
    """Expected versus actual consumption of a custom-shedding query.

    Shows the correction factor the enforcement policy converges to for a
    well-behaved custom method (close to 1) and for the buggy variant
    (significantly above 1).
    """
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    specs_good = _chapter6_specs(custom=True)
    base_capacity, _ = runner.calibrate_capacity(specs_good, trace)
    capacity = base_capacity * (1.0 - overload)

    def run_with(p2p_query) -> MonitoringSystem:
        queries = [make_query(name) for name in CHAPTER6_QUERIES
                   if name != "p2p-detector"]
        queries.append(p2p_query)
        system = MonitoringSystem.from_config(
            runner.system_config(strategy="mmfs_pkt",
                                 cycles_per_second=capacity), queries)
        system.run(trace, time_bin=runner.TIME_BIN)
        return system

    good = run_with(P2PDetectorQuery(custom_shedding=True))
    buggy = run_with(BuggyP2PDetectorQuery())
    return {
        "correction_factor_cooperative":
            good.enforcer.state("p2p-detector").correction,
        "correction_factor_buggy":
            buggy.enforcer.state("p2p-detector-buggy").correction,
        "violations_cooperative":
            good.enforcer.state("p2p-detector").total_violations,
        "violations_buggy":
            buggy.enforcer.state("p2p-detector-buggy").total_violations,
    }


# ----------------------------------------------------------------------
# Figure 6.4 — accuracy as a function of the sampling rate
# ----------------------------------------------------------------------
def figure_6_4_accuracy_vs_srate(scale: float = 1.0,
                                 rates: Sequence[float] = (0.1, 0.25, 0.5,
                                                           0.75, 1.0),
                                 trace: Optional[PacketTrace] = None,
                                 ) -> Dict[str, object]:
    """Accuracy of high-watermark, top-k and p2p-detector under packet sampling."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    curves = {}
    for name in ("high-watermark", "top-k", "p2p-detector"):
        curves[name] = runner.accuracy_vs_sampling_rate(
            name, trace, rates, sampling="packet")
    return {"curves": curves, "rates": list(rates)}


# ----------------------------------------------------------------------
# Figure 6.5 / Table 6.2 — accuracy at increasing overload
# ----------------------------------------------------------------------
def figure_6_5_overload_sweep(scale: float = 1.0,
                              overloads: Sequence[float] = (0.2, 0.5, 0.8),
                              trace: Optional[PacketTrace] = None,
                              ) -> Dict[str, object]:
    """System-wide average and minimum accuracy at increasing overload.

    The full Chapter 6 system: mmfs_pkt allocation plus custom load shedding
    for the P2P detector.
    """
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    specs = _chapter6_specs(custom=True)
    base_capacity, reference = runner.calibrate_capacity(specs, trace)
    average, minimum, per_query = [], [], {}
    for k in overloads:
        result = runner.run_system(specs, trace, base_capacity * (1.0 - k),
                                   mode="predictive", strategy="mmfs_pkt")
        accs = runner.accuracy_by_query(result, reference)
        per_query[float(k)] = accs
        average.append(float(np.mean(list(accs.values()))))
        minimum.append(float(np.min(list(accs.values()))))
    return {
        "overloads": list(overloads),
        "average_accuracy": average,
        "minimum_accuracy": minimum,
        "per_query_accuracy": per_query,
    }


def table_6_2_accuracy_by_query(scale: float = 1.0, overload: float = 0.5,
                                trace: Optional[PacketTrace] = None,
                                ) -> Dict[str, object]:
    """Per-query accuracy of the complete system at a fixed overload."""
    sweep = figure_6_5_overload_sweep(scale=scale, overloads=(overload,),
                                      trace=trace)
    accs = sweep["per_query_accuracy"][float(overload)]
    rows = [{"query": name, "accuracy": value}
            for name, value in sorted(accs.items())]
    return {"rows": rows, "overload": overload}


# ----------------------------------------------------------------------
# Figures 6.6 / 6.7 — with and without custom shedding support
# ----------------------------------------------------------------------
def figure_6_6_vs_6_7(scale: float = 1.0, overload: float = 0.5,
                      trace: Optional[PacketTrace] = None,
                      ) -> Dict[str, object]:
    """eq_srates without custom shedding versus mmfs_pkt with custom shedding."""
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    base_capacity, reference = runner.calibrate_capacity(
        _chapter6_specs(custom=False), trace)
    capacity = base_capacity * (1.0 - overload)
    legacy = runner.run_system(
        _chapter6_specs(custom=False), trace, capacity,
        config=runner.system_config(strategy="eq_srates",
                                    support_custom_shedding=False))
    full = runner.run_system(
        _chapter6_specs(custom=True), trace, capacity,
        config=runner.system_config(strategy="mmfs_pkt",
                                    support_custom_shedding=True))
    legacy_accs = runner.accuracy_by_query(legacy, reference)
    full_accs = runner.accuracy_by_query(full, reference)
    return {
        "legacy_accuracy": legacy_accs,
        "full_accuracy": full_accs,
        "legacy_minimum": float(np.min(list(legacy_accs.values()))),
        "full_minimum": float(np.min(list(full_accs.values()))),
        "dropped_packets": {"legacy": legacy.dropped_packets,
                            "full": full.dropped_packets},
    }


# ----------------------------------------------------------------------
# Figure 6.8 — massive DDoS
# ----------------------------------------------------------------------
def figure_6_8_ddos(scale: float = 1.0, overload: float = 0.3,
                    trace: Optional[PacketTrace] = None,
                    ) -> Dict[str, object]:
    """System behaviour during a massive DDoS attack against the monitor."""
    if trace is None:
        base = scenarios.payload_trace(scale=scale)
        from ..traffic import AnomalyWindow, ddos_attack, inject
        duration = base.duration
        attack = ddos_attack(AnomalyWindow(duration * 0.4, duration * 0.3),
                             packets_per_second=15000.0, seed=11)
        trace = inject(base, attack, name="cesca-ii-ddos")
    specs = _chapter6_specs(custom=True)
    base_capacity, reference = runner.calibrate_capacity(specs, trace,
                                                         quantile=0.5)
    capacity = base_capacity * (1.0 - overload)
    result = runner.run_system(specs, trace, capacity, mode="predictive",
                               strategy="mmfs_pkt")
    accs = runner.accuracy_by_query(result, reference)
    return {
        "dropped_packets": result.dropped_packets,
        "drop_fraction": result.drop_fraction,
        "mean_sampling_rate": result.mean_sampling_rate(),
        "accuracy": accs,
        "cpu_series": result.cycles_per_bin(),
        "cpu_limit": capacity * runner.TIME_BIN,
    }


# ----------------------------------------------------------------------
# Figure 6.9 — query arrivals
# ----------------------------------------------------------------------
def figure_6_9_query_arrivals(scale: float = 1.0, overload: float = 0.4,
                              trace: Optional[PacketTrace] = None,
                              ) -> Dict[str, object]:
    """New queries arriving while the system is already loaded.

    The dynamic scenario is driven through the streaming session API: the
    arriving queries are *not* known to the system up front — each one is
    registered live with :meth:`MonitoringSession.add_query` when the stream
    reaches its arrival time, exactly as an operator would submit a query to
    a running monitor.
    """
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    duration = trace.duration
    base_specs = ["counter", "flows", "high-watermark"]
    arriving = [("top-k", duration * 0.35), (_p2p_spec(True), duration * 0.65)]
    base_capacity, reference = runner.calibrate_capacity(
        base_specs + [spec for spec, _ in arriving], trace)
    capacity = base_capacity * (1.0 - overload)

    system = MonitoringSystem.from_config(
        runner.system_config(strategy="mmfs_pkt",
                             cycles_per_second=capacity),
        runner.build_queries(base_specs))
    pending = list(arriving)
    session = system.open_session(time_bin=runner.TIME_BIN, name=trace.name)
    for batch in trace.batches(runner.TIME_BIN):
        while pending and batch.start_ts + 1e-9 >= pending[0][1]:
            spec, start = pending.pop(0)
            session.add_query(runner.build_queries([spec])[0],
                              start_time=start)
        session.ingest(batch)
    result = session.close()
    return {
        "dropped_packets": result.dropped_packets,
        "rates_over_time": {name: result.rate_series(name)
                            for name in result.query_logs},
        "accuracy": runner.accuracy_by_query(result, reference),
        "arrival_times": {str(spec): start for spec, start in arriving},
    }


# ----------------------------------------------------------------------
# Figures 6.10 / 6.11 — selfish and buggy queries
# ----------------------------------------------------------------------
def _misbehaving_run(query_cls, scale: float, overload: float,
                     trace: Optional[PacketTrace]) -> Dict[str, object]:
    if trace is None:
        trace = scenarios.payload_trace(scale=scale)
    well_behaved = [name for name in CHAPTER6_QUERIES if name != "p2p-detector"]
    # Calibrate including a (well-behaved) P2P detector so the allocation
    # grants the offender a real share of the cycles; the point of the
    # experiment is that the *enforcer*, not starvation, contains it.
    base_capacity, _ = runner.calibrate_capacity(
        well_behaved + ["p2p-detector"], trace)
    _, reference = runner.calibrate_capacity(well_behaved, trace)
    capacity = base_capacity * (1.0 - overload)
    queries = runner.build_queries(well_behaved)
    offender = query_cls()
    queries.append(offender)
    system = MonitoringSystem.from_config(
        runner.system_config(strategy="mmfs_pkt",
                             cycles_per_second=capacity), queries)
    result = system.run(trace, time_bin=runner.TIME_BIN)
    state = system.enforcer.state(offender.name)
    accs = runner.accuracy_by_query(result, reference)
    return {
        "offender": offender.name,
        "offender_disabled_times": state.total_disables,
        "offender_violations": state.total_violations,
        "offender_correction": state.correction,
        "well_behaved_accuracy": {name: accs[name] for name in well_behaved
                                  if name in accs},
        "dropped_packets": result.dropped_packets,
    }


def figure_6_10_selfish(scale: float = 1.0, overload: float = 0.3,
                        trace: Optional[PacketTrace] = None,
                        ) -> Dict[str, object]:
    """A selfish custom-shedding query is policed and disabled."""
    return _misbehaving_run(SelfishP2PDetectorQuery, scale, overload, trace)


def figure_6_11_buggy(scale: float = 1.0, overload: float = 0.3,
                      trace: Optional[PacketTrace] = None,
                      ) -> Dict[str, object]:
    """A buggy custom-shedding query is corrected and, if needed, disabled."""
    return _misbehaving_run(BuggyP2PDetectorQuery, scale, overload, trace)


# ----------------------------------------------------------------------
# Figures 6.12-6.14 — long online execution
# ----------------------------------------------------------------------
def figure_6_12_online_execution(scale: float = 1.0, overload: float = 0.5,
                                 trace: Optional[PacketTrace] = None,
                                 ) -> Dict[str, object]:
    """Online-execution style summary: CPU, buffers, drops, accuracy, rate."""
    if trace is None:
        trace = scenarios.payload_trace(
            scale=scale, duration=scenarios.scaled_duration("long", scale))
    specs = _chapter6_specs(custom=True)
    result, reference = runner.run_with_overload(specs, trace, overload,
                                                 mode="predictive",
                                                 strategy="mmfs_pkt")
    accs = runner.accuracy_by_query(result, reference)
    return {
        "series": {
            "total_cycles": result.cycles_per_bin(),
            "predicted_cycles": result.series("predicted_cycles"),
            "buffer_occupation": result.series("buffer_occupation"),
            "dropped_packets": result.series("dropped_packets"),
            "mean_rate": np.array([record.mean_rate for record in result.bins]),
        },
        "cpu_limit": result.budget.per_bin,
        "overall_accuracy": float(np.mean(list(accs.values()))) if accs else 0.0,
        "accuracy": accs,
        "dropped_packets": result.dropped_packets,
        "mean_sampling_rate": result.mean_sampling_rate(),
    }
