"""Shared experiment machinery.

Most evaluation figures need one of three building blocks:

* :func:`collect_observations` — run a query over a trace *without* any
  system around it and record, for every batch, the extracted features and
  the cycles the query consumed.  Predictor studies (Chapter 3) then replay
  these observations against any predictor configuration cheaply.
* :func:`calibrate_capacity` — determine the cycle capacity that would let a
  query set run without shedding, so experiments can dial in an exact
  overload factor ``K`` (the paper sets the capacity experimentally the same
  way, Section 5.5.3).
* :func:`run_system` / :func:`accuracy_by_query` — full system executions and
  the per-query accuracy of an execution against a reference execution.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cycles import CycleBudget
from ..core.features import FeatureExtractor, FeatureVector
from ..core.prediction import CyclePredictor, PredictionErrorTracker
from ..core.sampling import FlowSampler, PacketSampler
from ..monitor import metrics
from ..monitor.config import ReproDeprecationWarning, SystemConfig
from ..monitor.packet import PacketTrace, as_trace
from ..monitor.query import SAMPLING_FLOW, Query
from ..monitor.sharding import ShardedSystem
from ..monitor.system import ExecutionResult, MonitoringSystem
from ..queries import QuerySpec, make_query

#: Default time bin (100 ms, as in the paper).
TIME_BIN = 0.1

#: Feature-extraction settings used by the experiment harness.  The paper
#: counts distinct items with multi-resolution bitmaps because a software
#: monitor cannot afford exact counting at 10 Gb/s; in this reproduction the
#: traces are small enough that exact counting is both faster and noise-free,
#: so the harness uses it by default.  The bitmap backend remains the library
#: default and is exercised by the unit and property tests.
FEATURE_CONFIG = {"feature_method": "exact", "feature_kwargs": {}}

#: Backwards-compatible alias for callers that only tweak the bitmap size.
FAST_FEATURES: dict = {}


def system_config(**overrides) -> SystemConfig:
    """The harness's default :class:`SystemConfig`, with overrides applied.

    Starts from :data:`FEATURE_CONFIG` (exact feature counting) and the
    library defaults for everything else; any field of ``SystemConfig`` can
    be overridden — overrides always win over the harness defaults.  This is
    the canonical way for experiments to build the config they hand to
    :func:`run_system` / :meth:`MonitoringSystem.from_config`.
    """
    return SystemConfig(**{**FEATURE_CONFIG, **overrides})


def _resolve_config(config: Optional[SystemConfig],
                    mode: Optional[str] = None,
                    strategy=None,
                    predictor: Optional[str] = None,
                    system_kwargs: Optional[dict] = None) -> SystemConfig:
    """Merge the legacy keyword surface into one :class:`SystemConfig`.

    Explicitly named arguments (``mode``/``strategy``/``predictor``) override
    the config; loose ``**system_kwargs`` are a deprecated shim and override
    everything (so e.g. a user-supplied ``feature_method`` beats the
    harness's :data:`FEATURE_CONFIG` default instead of colliding with it).
    """
    if config is None:
        config = system_config()
    overrides = {key: value for key, value in
                 (("mode", mode), ("strategy", strategy),
                  ("predictor", predictor)) if value is not None}
    if overrides:
        config = config.replace(**overrides)
    if system_kwargs:
        warnings.warn(
            "passing MonitoringSystem keyword arguments "
            f"({sorted(system_kwargs)}) through the experiment helpers is "
            "deprecated; pass config=runner.system_config(...) (a "
            "repro.SystemConfig) instead",
            ReproDeprecationWarning, stacklevel=3)
        config = config.replace(**system_kwargs)
    return config


# ----------------------------------------------------------------------
# Observation collection (prediction studies)
# ----------------------------------------------------------------------
@dataclass
class QueryObservations:
    """Per-batch features and measured cycles for one query on one trace."""

    query_name: str
    features: List[FeatureVector] = field(default_factory=list)
    cycles: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cycles)

    def cycles_array(self) -> np.ndarray:
        return np.array(self.cycles, dtype=np.float64)


def collect_observations(query: Query, trace: PacketTrace,
                         time_bin: float = TIME_BIN,
                         feature_method: str = None,
                         feature_kwargs: Optional[dict] = None,
                         ) -> QueryObservations:
    """Run ``query`` over ``trace`` and record (features, cycles) per batch.

    Measurement intervals are flushed exactly as the full system would flush
    them, so queries whose cost depends on per-interval state (e.g. the flow
    table of the flows query) exhibit the same cost structure here as online.
    """
    query.reset()
    extractor = FeatureExtractor(
        measurement_interval=query.measurement_interval,
        method=feature_method if feature_method is not None
        else FEATURE_CONFIG["feature_method"],
        counter_kwargs=feature_kwargs if feature_kwargs is not None
        else dict(FEATURE_CONFIG["feature_kwargs"]),
    )
    observations = QueryObservations(query.name)
    interval_start = None
    for batch in trace.batches(time_bin):
        if interval_start is None:
            interval_start = batch.start_ts
        while batch.start_ts >= interval_start + query.measurement_interval - 1e-9:
            query.interval_result()
            query.consume_cycles()
            interval_start += query.measurement_interval
        filtered = query.filter.apply(batch)
        features = extractor.extract(filtered, update_state=True)
        query.update(filtered, 1.0)
        cycles = query.consume_cycles()
        observations.features.append(features)
        observations.cycles.append(cycles)
    return observations


def evaluate_predictor(predictor: CyclePredictor,
                       observations: QueryObservations,
                       warmup: int = 2) -> PredictionErrorTracker:
    """Replay observations through a predictor and track the relative error.

    The first ``warmup`` batches only feed the history (no error recorded),
    mirroring how the online system needs a couple of observations before the
    regression can be fitted.
    """
    predictor.reset()
    tracker = PredictionErrorTracker()
    for index, (features, cycles) in enumerate(
            zip(observations.features, observations.cycles)):
        if index >= warmup:
            predicted = predictor.predict(features)
            tracker.record(predicted, cycles)
        predictor.observe(features, cycles)
    return tracker


# ----------------------------------------------------------------------
# Capacity calibration and full-system runs
# ----------------------------------------------------------------------
def build_queries(names: Sequence,
                  query_kwargs: Optional[Dict[str, dict]] = None) -> List[Query]:
    """Instantiate queries from specs (thin wrapper around the query factory)."""
    return _make_queries(names, query_kwargs)


def reference_system(queries: Iterable[Query], budget: Optional[CycleBudget] = None,
                     config: Optional[SystemConfig] = None,
                     **kwargs) -> MonitoringSystem:
    """A system configured for a reference (ground truth) execution."""
    config = _resolve_config(config, mode="reference", system_kwargs=kwargs)
    if budget is not None:
        config = config.replace(cycles_per_second=budget.cycles_per_second)
    return MonitoringSystem.from_config(config, queries)


def calibrate_capacity(query_names: Sequence[str], trace: PacketTrace,
                       time_bin: float = TIME_BIN,
                       quantile: float = 0.95,
                       query_kwargs: Optional[Dict[str, dict]] = None,
                       ) -> Tuple[float, ExecutionResult]:
    """Return ``(cycles_per_second, reference_result)`` for a query set.

    The capacity is the per-bin cycle usage of an unshedded execution at the
    given quantile, converted to cycles per second.  Running an evaluated
    system at ``capacity * (1 - K)`` then produces an overload factor of
    roughly ``K`` (Section 5.4: ``K = 0`` no overload, ``K = 1`` no capacity).
    """
    queries = _make_queries(query_names, query_kwargs)
    system = reference_system(queries)
    reference = system.run(as_trace(trace), time_bin=time_bin)
    per_bin = reference.cycles_per_bin()
    if len(per_bin) == 0:
        raise ValueError("trace produced no batches")
    capacity_per_bin = float(np.quantile(per_bin, quantile))
    return capacity_per_bin / time_bin, reference


def _make_queries(query_names: Sequence,
                  query_kwargs: Optional[Dict[str, dict]] = None) -> List[Query]:
    """Build query instances from specs.

    Each spec is anything :meth:`repro.queries.QuerySpec.parse` accepts — a
    registry name (``"counter"``), a ``(registry_name, kwargs)`` pair, a
    spec dict or a :class:`~repro.queries.QuerySpec` — so several instances
    of one query class can run under distinct names and carry declarative
    filters.  The legacy ``query_kwargs`` mapping merges extra constructor
    arguments into name-only specs.
    """
    query_kwargs = query_kwargs or {}
    queries: List[Query] = []
    for spec in query_names:
        if isinstance(spec, str) and spec in query_kwargs:
            queries.append(make_query(spec, **query_kwargs.get(spec, {})))
        else:
            queries.append(QuerySpec.parse(spec).build())
    return queries


def run_system(query_names: Optional[Sequence] = None,
               trace: PacketTrace = None,
               cycles_per_second: float = None,
               mode: Optional[str] = None, strategy=None,
               predictor: Optional[str] = None, time_bin: float = TIME_BIN,
               query_kwargs: Optional[Dict[str, dict]] = None,
               config: Optional[SystemConfig] = None,
               num_shards: Optional[int] = None,
               n_workers: int = 1, respect_cores: bool = True,
               **system_kwargs) -> ExecutionResult:
    """Run a freshly-built system over a trace with an explicit capacity.

    ``query_names`` is any query-mix description ``repro.queries`` can
    parse — registry names, ``(name, kwargs)`` pairs, spec dicts or
    :class:`~repro.queries.QuerySpec` objects; pass ``None`` to run the
    declarative ``queries`` field of the config instead.

    ``trace`` may be an in-memory :class:`PacketTrace`, a
    :class:`~repro.monitor.packet.StreamingTrace`, or a trace store
    (:class:`repro.traffic.trace_io.TraceStore`); stores replay
    out-of-core, so traces far larger than RAM run with bounded memory.

    The system is described by ``config`` (a :class:`repro.SystemConfig`;
    defaults to :func:`system_config`, i.e. a predictive system with the
    harness's exact feature counting).  ``mode``/``strategy``/``predictor``
    remain as named conveniences and override the config; passing other
    ``MonitoringSystem`` knobs as loose keyword arguments is deprecated —
    put them in the config instead.

    With ``num_shards > 1`` (named argument or config field) the execution
    runs on a :class:`~repro.monitor.sharding.ShardedSystem`: the stream is
    flow-hash partitioned across that many shard pipelines (each owning
    ``1/num_shards`` of the capacity, rebalanced per bin when
    ``config.shard_rebalance`` is set) and the returned result is the
    merged, stream-global one.  ``n_workers > 1`` asks for process-parallel
    shard execution on the backend selected by ``config.shard_backend``
    (``"auto"`` resolves to the persistent shard-worker pool when the host
    can honour the request); the default ``n_workers=1`` keeps the shards
    serial in-process.  Results are bit-identical either way.
    """
    if trace is None or cycles_per_second is None:
        # Only query_names is genuinely optional (it may come from the
        # config); these two merely default to None so query_names could.
        raise ValueError("run_system requires a trace and an explicit "
                         "cycles_per_second capacity")
    config = _resolve_config(config, mode=mode, strategy=strategy,
                             predictor=predictor, system_kwargs=system_kwargs)
    if num_shards is not None:
        config = config.replace(num_shards=int(num_shards))
    config = config.replace(cycles_per_second=float(cycles_per_second))
    if query_names is None:
        if config.queries is None:
            raise ValueError("run_system needs query_names or a config with "
                             "a declarative 'queries' field")
        query_names = config.queries
    trace = as_trace(trace)
    if config.num_shards > 1:
        sharded = ShardedSystem(
            lambda: _make_queries(query_names, query_kwargs), config=config,
            n_workers=int(n_workers), respect_cores=bool(respect_cores))
        return sharded.run(trace, time_bin=time_bin)
    queries = _make_queries(query_names, query_kwargs)
    system = MonitoringSystem.from_config(config, queries)
    return system.run(trace, time_bin=time_bin)


def ingest_trace(session, trace_or_store, close: bool = True):
    """Drive an open session with every bin of a trace or trace store.

    The out-of-core execution driver: ``session`` is any open streaming
    session (:class:`~repro.monitor.session.MonitoringSession` or
    :class:`~repro.monitor.sharding.ShardedSession`) and
    ``trace_or_store`` anything :func:`repro.monitor.packet.as_trace`
    accepts.  A v2 trace store streams through the full predict/shed
    pipeline chunk by chunk, so peak memory stays bounded by the chunk
    cache no matter the trace size.  Returns the final
    :class:`~repro.monitor.system.ExecutionResult`; pass ``close=False``
    to keep the session open (live reconfiguration, more traffic) and get
    the session back instead.
    """
    session.ingest_trace(trace_or_store)
    return session.close() if close else session


def run_with_overload(query_names: Sequence[str], trace: PacketTrace,
                      overload: float, mode: Optional[str] = None,
                      strategy=None, predictor: Optional[str] = None,
                      reference: Optional[ExecutionResult] = None,
                      base_capacity: Optional[float] = None,
                      time_bin: float = TIME_BIN,
                      config: Optional[SystemConfig] = None,
                      **system_kwargs
                      ) -> Tuple[ExecutionResult, ExecutionResult]:
    """Run a system at overload factor ``K`` and return (result, reference).

    ``overload`` follows the paper's convention: the capacity handed to the
    evaluated system is ``(1 - K)`` times the capacity needed to run the
    query set without shedding.
    """
    if not 0.0 <= overload < 1.0:
        raise ValueError("overload K must be in [0, 1)")
    config = _resolve_config(config, mode=mode, strategy=strategy,
                             predictor=predictor, system_kwargs=system_kwargs)
    if reference is None or base_capacity is None:
        base_capacity, reference = calibrate_capacity(query_names, trace,
                                                      time_bin=time_bin)
    capacity = base_capacity * (1.0 - overload)
    result = run_system(query_names, trace, capacity, time_bin=time_bin,
                        config=config)
    return result, reference


# ----------------------------------------------------------------------
# Accuracy evaluation
# ----------------------------------------------------------------------
def accuracy_by_query(result: ExecutionResult, reference: ExecutionResult
                      ) -> Dict[str, float]:
    """Mean accuracy (1 - error) of every query in ``result``."""
    accuracies = {}
    for name, log in result.query_logs.items():
        if name not in reference.query_logs:
            continue
        error = metrics.mean_error(name, log, reference.query_logs[name])
        accuracies[name] = metrics.accuracy_from_error(error)
    return accuracies


def error_by_query(result: ExecutionResult, reference: ExecutionResult
                   ) -> Dict[str, float]:
    """Mean error of every query in ``result`` versus the reference."""
    errors = {}
    for name, log in result.query_logs.items():
        if name not in reference.query_logs:
            continue
        errors[name] = metrics.mean_error(name, log, reference.query_logs[name])
    return errors


def accuracy_series(result: ExecutionResult, reference: ExecutionResult,
                    query_name: str) -> np.ndarray:
    """Per-interval accuracy series of one query."""
    errors = metrics.compare_logs(query_name, result.query_logs[query_name],
                                  reference.query_logs[query_name])
    return np.maximum(0.0, 1.0 - errors)


def accuracy_vs_sampling_rate(query_name: str, trace: PacketTrace,
                              rates: Sequence[float],
                              sampling: str = "auto",
                              time_bin: float = TIME_BIN,
                              seed: int = 0) -> Dict[float, float]:
    """Mean accuracy of a query when a fixed sampling rate is applied.

    This reproduces the per-query sweeps used to pick the minimum sampling
    rates of Table 5.2 and the accuracy-versus-rate curves of Figure 6.4.
    ``sampling`` is ``"packet"``, ``"flow"`` or ``"auto"`` (the query's own
    preference).
    """
    reference_query = make_query(query_name)
    reference_log = _standalone_log(reference_query, trace, 1.0, None, time_bin)
    accuracies: Dict[float, float] = {}
    for rate in rates:
        query = make_query(query_name)
        method = query.sampling_method if sampling == "auto" else sampling
        if method == SAMPLING_FLOW:
            sampler = FlowSampler(rng=np.random.default_rng(seed),
                                  measurement_interval=query.measurement_interval)
        else:
            sampler = PacketSampler(rng=np.random.default_rng(seed))
        log = _standalone_log(query, trace, rate, sampler, time_bin)
        error = metrics.mean_error(query_name, log, reference_log)
        accuracies[float(rate)] = metrics.accuracy_from_error(error)
    return accuracies


def _standalone_log(query: Query, trace: PacketTrace, rate: float, sampler,
                    time_bin: float):
    """Run one query standalone at a fixed sampling rate and log its results."""
    from ..monitor.query import QueryResultLog

    query.reset()
    log = QueryResultLog(query.name)
    interval_start = None
    for batch in trace.batches(time_bin):
        if interval_start is None:
            interval_start = batch.start_ts
        while batch.start_ts >= interval_start + query.measurement_interval - 1e-9:
            log.append(interval_start, query.interval_result())
            query.consume_cycles()
            interval_start += query.measurement_interval
        filtered = query.filter.apply(batch)
        processed = filtered if (sampler is None or rate >= 1.0) else \
            sampler.sample(filtered, rate)
        query.update(processed, max(rate, 1e-12))
        query.consume_cycles()
    if interval_start is not None:
        log.append(interval_start, query.interval_result())
    return log


def summarize_costs(reference: ExecutionResult, duration: float
                    ) -> Dict[str, float]:
    """Average cycles per second consumed by each query (Figure 2.2)."""
    totals: Dict[str, float] = {}
    for record in reference.bins:
        for name, cycles in record.query_cycles_by_query.items():
            totals[name] = totals.get(name, 0.0) + cycles
    if duration <= 0:
        return totals
    return {name: total / duration for name, total in totals.items()}
