"""Trace query: full-payload packet collection (Table 2.2).

Stores every packet matching its filter to the storage process.  The cost is
driven by the number of bytes moved; the accuracy of a sampled execution is
defined as the fraction of packets processed (Section 2.2.1), since no
standard procedure exists to "un-sample" a packet trace.
"""

from __future__ import annotations

from typing import Dict

from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query


class TraceQuery(Query):
    """Collects (stores) all packets that match the filter."""

    name = "trace"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.10
    measurement_interval = 1.0

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._packets_stored = 0.0
        self._bytes_stored = 0.0

    def reset(self) -> None:
        super().reset()
        self._packets_stored = 0.0
        self._bytes_stored = 0.0

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        nbytes = batch.byte_count
        self.charge("packet", n)
        self.charge("store_byte", nbytes)
        self._packets_stored += n
        self._bytes_stored += nbytes

    def interval_result(self) -> Dict[str, float]:
        self.charge("flush")
        result = {
            "packets_stored": self._packets_stored,
            "bytes_stored": self._bytes_stored,
        }
        self._packets_stored = 0.0
        self._bytes_stored = 0.0
        return result
