"""Counter query: traffic load in packets and bytes (Table 2.2).

The cheapest query of the standard set: it maintains two aggregate counters
per measurement interval.  Its cost is driven purely by the number of packets,
which is why Simple Linear Regression on the packet count predicts it almost
perfectly (Figure 3.9).
"""

from __future__ import annotations

from typing import Dict

from ..core.sampling import scale_estimate
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query


class CounterQuery(Query):
    """Counts packets and bytes per measurement interval."""

    name = "counter"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.03
    measurement_interval = 1.0

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._packets = 0.0
        self._bytes = 0.0

    def reset(self) -> None:
        super().reset()
        self._packets = 0.0
        self._bytes = 0.0

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        self.charge("counter_update", 2 * n)
        self._packets += scale_estimate(n, sampling_rate)
        self._bytes += scale_estimate(batch.byte_count, sampling_rate)

    def interval_result(self) -> Dict[str, float]:
        self.charge("flush")
        result = {"packets": self._packets, "bytes": self._bytes}
        self._packets = 0.0
        self._bytes = 0.0
        return result
