"""Super-sources query: sources with the largest fan-out (Table 2.2).

Detects the source addresses contacting the largest number of distinct
destinations (super-spreaders), following the spirit of Venkataraman et al.
The query uses flow sampling (entire source-destination pairs survive or are
dropped together) and reports the estimated fan-out of the top sources; the
accuracy metric is the average relative error of those fan-out estimates.

The per-source destination sets are a :class:`DistinctFanout` kernel: the
distinct ``(src, dst)`` pairs live in one sorted array, so the per-batch
deduplication and the per-source counts are vectorised array operations
instead of a Python loop over a dict of sets.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..core.aggregate import DistinctFanout
from ..core.sampling import scale_estimates
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_FLOW, Query


class SuperSourcesQuery(Query):
    """Tracks the sources with the largest number of distinct destinations."""

    name = "super-sources"
    sampling_method = SAMPLING_FLOW
    minimum_sampling_rate = 0.93
    measurement_interval = 1.0

    #: The merged ``fanout`` map is re-topped from the summed per-shard
    #: estimates by :meth:`derive_merged`; ``sources`` sums (a source active
    #: on two shards counts twice; scan sources concentrate their pairs, so
    #: the bias is small).
    RESULT_MERGE = {"fanout": "derived", "sources": "sum"}

    def __init__(self, top_n: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        self.top_n = int(top_n)
        self._pairs = DistinctFanout()
        self._sampling_rate = 1.0

    def reset(self) -> None:
        super().reset()
        self._pairs.reset()
        self._sampling_rate = 1.0

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        self._sampling_rate = sampling_rate
        self.charge("hash_lookup", n)
        if n == 0:
            return
        pair_keys = DistinctFanout.pair_u32(batch.src_ip, batch.dst_ip)
        inserts = self._pairs.observe(pair_keys,
                                      batch.src_ip.astype(np.uint64))
        self.charge("hash_insert", inserts)
        self.charge("hash_update", n - inserts if n > inserts else 0)

    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        sources, counts = self._pairs.fanout()
        estimates = scale_estimates(counts.astype(np.float64),
                                    self._sampling_rate)
        # Fan-out descending, ties to the smaller source address — the
        # vectorised equivalent of sorting the full fan-out dict.
        order = np.lexsort((sources, -estimates))[:self.top_n]
        result = {
            "fanout": {int(sources[i]): float(estimates[i]) for i in order},
            "sources": float(len(sources)),
        }
        self._pairs.reset()
        return result

    @classmethod
    def derive_merged(cls, merged: Dict, results: Sequence[Dict]) -> Dict:
        """Sum per-shard fan-out estimates and re-take the top sources.

        A source's (src, dst) pairs spread across shards (the partition key
        is the full 5-tuple), so its global fan-out is the sum of the
        per-shard distinct-destination counts — an upper bound when the same
        destination is reached over several ports on different shards, which
        is rare for scan-style super-spreaders.

        The merged map keeps every summed source (ordered by fan-out desc,
        address asc) instead of truncating to a member's ``top_n``:
        truncation at merge time would drop fan-out mass an outer merge of
        a nested grouping still needs, and keeping the full summed table is
        what makes this fold associative and permutation-invariant.
        """
        fanout: Dict[int, float] = {}
        for result in results:
            for src, count in result.get("fanout", {}).items():
                fanout[src] = fanout.get(src, 0.0) + count
        top = sorted(fanout.items(), key=lambda item: (-item[1], item[0]))
        merged["fanout"] = dict(top)
        return merged
