"""Super-sources query: sources with the largest fan-out (Table 2.2).

Detects the source addresses contacting the largest number of distinct
destinations (super-spreaders), following the spirit of Venkataraman et al.
The query uses flow sampling (entire source-destination pairs survive or are
dropped together) and reports the estimated fan-out of the top sources; the
accuracy metric is the average relative error of those fan-out estimates.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Set

import numpy as np

from ..core.sampling import scale_estimate
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_FLOW, Query


class SuperSourcesQuery(Query):
    """Tracks the sources with the largest number of distinct destinations."""

    name = "super-sources"
    sampling_method = SAMPLING_FLOW
    minimum_sampling_rate = 0.93
    measurement_interval = 1.0

    def __init__(self, top_n: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        self.top_n = int(top_n)
        self._destinations: Dict[int, Set[int]] = defaultdict(set)
        self._sampling_rate = 1.0

    def reset(self) -> None:
        super().reset()
        self._destinations = defaultdict(set)
        self._sampling_rate = 1.0

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        self._sampling_rate = sampling_rate
        self.charge("hash_lookup", n)
        if n == 0:
            return
        pairs = np.stack([batch.src_ip.astype(np.int64),
                          batch.dst_ip.astype(np.int64)], axis=1)
        unique_pairs = np.unique(pairs, axis=0)
        inserts = 0
        for src, dst in unique_pairs:
            dst_set = self._destinations[int(src)]
            if int(dst) not in dst_set:
                dst_set.add(int(dst))
                inserts += 1
        self.charge("hash_insert", inserts)
        self.charge("hash_update", n - inserts if n > inserts else 0)

    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        fanout = {
            src: scale_estimate(len(dsts), self._sampling_rate)
            for src, dsts in self._destinations.items()
        }
        top = sorted(fanout.items(), key=lambda item: (-item[1], item[0]))
        result = {
            "fanout": dict(top[:self.top_n]),
            "sources": float(len(fanout)),
        }
        self._destinations = defaultdict(set)
        return result

    @classmethod
    def merge_interval_results(cls, results):
        """Sum per-shard fan-out estimates and re-take the top sources.

        A source's (src, dst) pairs spread across shards (the partition key
        is the full 5-tuple), so its global fan-out is the sum of the
        per-shard distinct-destination counts — an upper bound when the same
        destination is reached over several ports on different shards, which
        is rare for scan-style super-spreaders.  ``sources`` sums the same
        way (a source active on two shards counts twice; scan sources
        concentrate their pairs, so the bias is small).
        """
        results = list(results)
        if len(results) <= 1:
            return dict(results[0]) if results else {}
        fanout = {}
        for result in results:
            for src, count in result["fanout"].items():
                fanout[src] = fanout.get(src, 0.0) + count
        top_n = max(len(result["fanout"]) for result in results)
        top = sorted(fanout.items(), key=lambda item: (-item[1], item[0]))
        return {
            "fanout": dict(top[:top_n]),
            "sources": float(sum(r["sources"] for r in results)),
        }
