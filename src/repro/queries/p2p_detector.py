"""P2P detector query: signature-based peer-to-peer flow detection (Table 2.2).

Combines payload signature matching (BitTorrent / Gnutella / Kazaa handshake
strings) with the well-known-port heuristic to flag flows as peer-to-peer,
following the approach of Karagiannis et al. and Sen et al. cited in the
paper.  This is the most expensive query of the standard set and the running
example of Chapter 6:

* under *packet* sampling its accuracy collapses quickly, because dropping
  the single packet that carries the handshake makes the whole flow
  undetectable (Figure 6.4);
* with a *custom* load shedding method that samples whole flows internally,
  the query keeps a much higher accuracy for the same resource usage
  (Figures 6.1 and 6.2).

The detection state lives in :class:`KeyedAccumulator` kernels (the seen /
flagged flow tables and the per-flow handshake-hit counters) and the
signature scan is the batched :func:`~repro.core.aggregate.payload_hits`
sweep, so the per-packet Python loop of the original implementation is gone.
The semantics — including the exact bytes charged to the cycle meter, which
stop accruing for a flow once it is flagged — are unchanged.

Besides the cooperative custom-shedding variant, this module provides the
*selfish* and *buggy* variants used in Sections 6.3.4 and 6.3.5 to exercise
the enforcement policy.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.aggregate import KeyedAccumulator
from ..core.hashing import H3Hash
from ..core.sampling import scale_estimate
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_CUSTOM, SAMPLING_PACKET, Query
from ..traffic.generator import P2P_SIGNATURES

#: Transport ports commonly associated with P2P protocols.
P2P_PORTS: Tuple[int, ...] = (6881, 6882, 6883, 6346, 6347, 4662, 1214)


class P2PDetectorQuery(Query):
    """Signature plus port-heuristic P2P flow detector.

    Parameters
    ----------
    custom_shedding:
        When True the query registers a custom load shedding method that
        samples whole flows internally instead of relying on system packet
        sampling.
    """

    name = "p2p-detector"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.60
    measurement_interval = 1.0
    needs_payload = True

    #: Flow affinity makes the verdict-set union exact: a flow's packets
    #: (and therefore its handshake) are confined to one shard, so the
    #: union of the per-shard ``p2p_flows`` lists is precisely the set a
    #: single detector over the whole stream would flag, and the flow
    #: counts sum without double counting.
    RESULT_MERGE = {"p2p_flows": "union", "flows_seen": "sum",
                    "p2p_flow_count": "sum"}

    #: Number of signature-carrying (handshake) packets that must be observed
    #: before a flow is flagged as P2P; signature-based detectors need to see
    #: the handshake exchange, not just one direction.
    handshake_packets = 2

    def __init__(self, custom_shedding: bool = False, **kwargs) -> None:
        super().__init__(**kwargs)
        self.custom_shedding = bool(custom_shedding)
        if custom_shedding:
            self.sampling_method = SAMPLING_CUSTOM
        self._flows_seen = KeyedAccumulator()
        self._signature_hits = KeyedAccumulator(columns=("hits",))
        self._p2p_flows = KeyedAccumulator()
        self._sampling_rate = 1.0
        self._flow_hash = H3Hash(rng=np.random.default_rng(7))

    def reset(self) -> None:
        super().reset()
        self._flows_seen.reset()
        self._signature_hits.reset()
        self._p2p_flows.reset()
        self._sampling_rate = 1.0

    # ------------------------------------------------------------------
    # Detection logic
    # ------------------------------------------------------------------
    def _scan_batch(self, batch: Batch) -> None:
        """Process every packet of ``batch`` (already reduced, if at all)."""
        n = len(batch)
        self.charge("hash_lookup", n)
        if n == 0:
            return
        keys = batch.aggregate_hashes(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"))
        unique, inverse = batch.unique_aggregate_hashes(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"),
            return_inverse=True)
        new_flows = self._flows_seen.observe(unique)
        self.charge("hash_insert", new_flows)

        # Packets of flows already flagged are skipped outright: they are
        # neither scanned nor counted, exactly as the per-packet loop did.
        # Membership is tested once per unique flow and broadcast back.
        active = ~self._p2p_flows.contains(unique)[inverse]
        if batch.has_payloads:
            scanned_bytes = self._scan_payloads(batch, keys, active,
                                                unique, inverse)
        else:
            # Header-only traffic: fall back to the port heuristic alone.
            port_hit = np.isin(batch.dst_port, P2P_PORTS) | \
                np.isin(batch.src_port, P2P_PORTS)
            flagged = keys[active & port_hit]
            if flagged.size:
                self._p2p_flows.observe(np.unique(flagged))
            scanned_bytes = 0
        self.charge("regex_byte", scanned_bytes * len(P2P_SIGNATURES))

    def _scan_payloads(self, batch: Batch, keys: np.ndarray,
                       active: np.ndarray, unique: np.ndarray,
                       inverse: np.ndarray) -> int:
        """Signature scan with per-flow handshake thresholding.

        Returns the number of payload bytes the scalar reference
        implementation would have scanned: packets of a flow stop counting
        (and stop being scanned) from the moment the flow crosses the
        handshake threshold, so the ``regex_byte`` charge is bit-identical
        to the original per-packet loop.
        """
        sig_hit = batch.payload_hits(P2P_SIGNATURES)
        lengths = batch.payload_lengths()
        index = np.flatnonzero(active)
        if index.size == 0:
            return 0
        hits_here = sig_hit[index]
        scanned_bytes = int(lengths[index].sum())
        if not hits_here.any():
            # No signature anywhere in the batch: nothing can cross the
            # handshake threshold (prior counts are always below it, or the
            # flow would already be flagged), so every active packet is
            # scanned and no per-flow state changes.
            return scanned_bytes
        # Only flows with an in-batch signature hit can update counters,
        # flag, or skip packets; restrict the per-flow threshold pass to
        # their packets (flagged via the unique-flow index, not a search).
        inverse_active = inverse[index]
        hit_unique = np.zeros(len(unique), dtype=bool)
        hit_unique[inverse_active[hits_here]] = True
        relevant = hit_unique[inverse_active]
        flows = keys[index][relevant]
        # Group the relevant packets by flow, preserving arrival order
        # inside each group (stable sort), and accumulate hits per flow.
        order = np.argsort(flows, kind="stable")
        flows = flows[order]
        hits = hits_here[relevant][order].astype(np.int64)
        seg_start = np.r_[True, flows[1:] != flows[:-1]]
        seg_ids = np.cumsum(seg_start) - 1
        seg_lengths = np.bincount(seg_ids)
        prior = self._signature_hits.lookup(flows[seg_start], "hits")
        running = np.cumsum(hits)
        running -= np.repeat((running - hits)[seg_start], seg_lengths)
        total = prior[seg_ids] + running
        # A packet is skipped when its flow reached the threshold strictly
        # before it; the flagging packet itself is still scanned.
        skipped = (total - hits) >= self.handshake_packets
        if skipped.any():
            scanned_bytes -= int(lengths[index][relevant][order][skipped].sum())
        counted = np.bincount(seg_ids, weights=hits * ~skipped)
        segment_flows = flows[seg_start]
        self._signature_hits.observe(segment_flows, hits=counted)
        flagged = segment_flows[(prior + counted) >= self.handshake_packets]
        if flagged.size:
            self._p2p_flows.observe(flagged)
        return scanned_bytes

    def update(self, batch: Batch, sampling_rate: float) -> None:
        self._sampling_rate = sampling_rate
        self._scan_batch(batch)

    # ------------------------------------------------------------------
    # Custom load shedding (Chapter 6)
    # ------------------------------------------------------------------
    def shed_load(self, batch: Batch, target_fraction: float) -> float:
        """Flow-sample the batch internally down to ``target_fraction``.

        Whole flows survive together, so the handshake packet of a surviving
        flow is never lost; the per-interval flow counts are scaled by the
        applied fraction when results are reported.
        """
        if not self.custom_shedding:
            raise NotImplementedError(
                "custom shedding is disabled for this instance")
        fraction = float(min(1.0, max(0.0, target_fraction)))
        self._sampling_rate = fraction
        if fraction >= 1.0 or len(batch) == 0:
            self._scan_batch(batch)
            return 1.0
        if fraction <= 0.0:
            return 0.0
        keys = batch.aggregate_hashes(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"))
        keep = self._flow_hash.unit_interval(keys) < fraction
        self.charge("packet", len(batch))  # hashing every packet has a cost
        self._scan_batch(batch.select(keep))
        kept = int(keep.sum())
        return kept / len(batch)

    # ------------------------------------------------------------------
    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        result = {
            "p2p_flows": [int(flow) for flow in self._p2p_flows.keys],
            "flows_seen": scale_estimate(len(self._flows_seen),
                                         self._sampling_rate),
            "p2p_flow_count": scale_estimate(len(self._p2p_flows),
                                             self._sampling_rate),
        }
        self._flows_seen.reset()
        self._signature_hits.reset()
        self._p2p_flows.reset()
        return result


class SelfishP2PDetectorQuery(P2PDetectorQuery):
    """A selfish variant that ignores the shedding request (Section 6.3.4).

    It always processes the full batch to maximise its own accuracy, yet
    reports that it complied with the requested fraction.  The enforcement
    policy must detect the excess consumption and disable it.
    """

    name = "p2p-detector-selfish"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("custom_shedding", True)
        super().__init__(**kwargs)

    def shed_load(self, batch: Batch, target_fraction: float) -> float:
        self._sampling_rate = 1.0
        self._scan_batch(batch)       # ignores the request entirely
        return float(target_fraction)  # ...and lies about it


class BuggyP2PDetectorQuery(P2PDetectorQuery):
    """A buggy variant whose custom method sheds far too little (Section 6.3.5).

    The implementation confuses the target fraction with its square root, so
    it systematically consumes more cycles than it was granted without any
    malicious intent.  The enforcement policy corrects and eventually
    disables it.
    """

    name = "p2p-detector-buggy"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("custom_shedding", True)
        super().__init__(**kwargs)

    def shed_load(self, batch: Batch, target_fraction: float) -> float:
        buggy_fraction = float(np.sqrt(min(1.0, max(0.0, target_fraction))))
        return super().shed_load(batch, buggy_fraction)
