"""P2P detector query: signature-based peer-to-peer flow detection (Table 2.2).

Combines payload signature matching (BitTorrent / Gnutella / Kazaa handshake
strings) with the well-known-port heuristic to flag flows as peer-to-peer,
following the approach of Karagiannis et al. and Sen et al. cited in the
paper.  This is the most expensive query of the standard set and the running
example of Chapter 6:

* under *packet* sampling its accuracy collapses quickly, because dropping
  the single packet that carries the handshake makes the whole flow
  undetectable (Figure 6.4);
* with a *custom* load shedding method that samples whole flows internally,
  the query keeps a much higher accuracy for the same resource usage
  (Figures 6.1 and 6.2).

Besides the cooperative custom-shedding variant, this module provides the
*selfish* and *buggy* variants used in Sections 6.3.4 and 6.3.5 to exercise
the enforcement policy.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import numpy as np

from ..core.hashing import H3Hash
from ..core.sampling import scale_estimate
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_CUSTOM, SAMPLING_PACKET, Query
from ..traffic.generator import P2P_SIGNATURES

#: Transport ports commonly associated with P2P protocols.
P2P_PORTS: Tuple[int, ...] = (6881, 6882, 6883, 6346, 6347, 4662, 1214)


class P2PDetectorQuery(Query):
    """Signature plus port-heuristic P2P flow detector.

    Parameters
    ----------
    custom_shedding:
        When True the query registers a custom load shedding method that
        samples whole flows internally instead of relying on system packet
        sampling.
    """

    name = "p2p-detector"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.60
    measurement_interval = 1.0
    needs_payload = True

    #: Number of signature-carrying (handshake) packets that must be observed
    #: before a flow is flagged as P2P; signature-based detectors need to see
    #: the handshake exchange, not just one direction.
    handshake_packets = 2

    def __init__(self, custom_shedding: bool = False, **kwargs) -> None:
        super().__init__(**kwargs)
        self.custom_shedding = bool(custom_shedding)
        if custom_shedding:
            self.sampling_method = SAMPLING_CUSTOM
        self._flows_seen: Set[int] = set()
        self._signature_hits: Dict[int, int] = {}
        self._p2p_flows: Set[int] = set()
        self._sampling_rate = 1.0
        self._flow_hash = H3Hash(rng=np.random.default_rng(7))

    def reset(self) -> None:
        super().reset()
        self._flows_seen = set()
        self._signature_hits = {}
        self._p2p_flows = set()
        self._sampling_rate = 1.0

    # ------------------------------------------------------------------
    # Detection logic
    # ------------------------------------------------------------------
    def _scan_batch(self, batch: Batch) -> None:
        """Process every packet of ``batch`` (already reduced, if at all)."""
        n = len(batch)
        self.charge("hash_lookup", n)
        if n == 0:
            return
        keys = batch.aggregate_hashes(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"))
        new_flows = set(int(k) for k in np.unique(keys)) - self._flows_seen
        self.charge("hash_insert", len(new_flows))
        self._flows_seen.update(new_flows)

        port_hit = np.isin(batch.dst_port, P2P_PORTS) | \
            np.isin(batch.src_port, P2P_PORTS)
        payloads = batch.payloads if batch.has_payloads else None
        scanned_bytes = 0
        for i in range(n):
            flow = int(keys[i])
            if flow in self._p2p_flows:
                continue
            signature_hit = False
            if payloads is not None and payloads[i]:
                payload = payloads[i]
                scanned_bytes += len(payload)
                signature_hit = any(payload.find(sig) >= 0
                                    for sig in P2P_SIGNATURES)
            if signature_hit:
                hits = self._signature_hits.get(flow, 0) + 1
                self._signature_hits[flow] = hits
                if hits >= self.handshake_packets:
                    self._p2p_flows.add(flow)
            elif payloads is None and bool(port_hit[i]):
                # Header-only traffic: fall back to the port heuristic alone.
                self._p2p_flows.add(flow)
        self.charge("regex_byte", scanned_bytes * len(P2P_SIGNATURES))

    def update(self, batch: Batch, sampling_rate: float) -> None:
        self._sampling_rate = sampling_rate
        self._scan_batch(batch)

    # ------------------------------------------------------------------
    # Custom load shedding (Chapter 6)
    # ------------------------------------------------------------------
    def shed_load(self, batch: Batch, target_fraction: float) -> float:
        """Flow-sample the batch internally down to ``target_fraction``.

        Whole flows survive together, so the handshake packet of a surviving
        flow is never lost; the per-interval flow counts are scaled by the
        applied fraction when results are reported.
        """
        if not self.custom_shedding:
            raise NotImplementedError(
                "custom shedding is disabled for this instance")
        fraction = float(min(1.0, max(0.0, target_fraction)))
        self._sampling_rate = fraction
        if fraction >= 1.0 or len(batch) == 0:
            self._scan_batch(batch)
            return 1.0
        if fraction <= 0.0:
            return 0.0
        keys = batch.aggregate_hashes(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"))
        keep = self._flow_hash.unit_interval(keys) < fraction
        self.charge("packet", len(batch))  # hashing every packet has a cost
        self._scan_batch(batch.select(keep))
        kept = int(keep.sum())
        return kept / len(batch)

    # ------------------------------------------------------------------
    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        result = {
            "p2p_flows": sorted(self._p2p_flows),
            "flows_seen": scale_estimate(len(self._flows_seen),
                                         self._sampling_rate),
            "p2p_flow_count": scale_estimate(len(self._p2p_flows),
                                             self._sampling_rate),
        }
        self._flows_seen = set()
        self._signature_hits = {}
        self._p2p_flows = set()
        return result

    @classmethod
    def merge_interval_results(cls, results):
        """Union the per-shard P2P verdicts; counts are additive.

        Flow affinity makes the merge exact for the verdict set: a flow's
        packets (and therefore its handshake) are confined to one shard, so
        the union of the per-shard ``p2p_flows`` lists is precisely the set
        a single detector over the whole stream would flag, and the flow
        counts sum without double counting.
        """
        results = list(results)
        if len(results) <= 1:
            return dict(results[0]) if results else {}
        verdicts = set()
        for result in results:
            verdicts.update(result["p2p_flows"])
        return {
            "p2p_flows": sorted(verdicts),
            "flows_seen": float(sum(r["flows_seen"] for r in results)),
            "p2p_flow_count": float(sum(r["p2p_flow_count"]
                                        for r in results)),
        }


class SelfishP2PDetectorQuery(P2PDetectorQuery):
    """A selfish variant that ignores the shedding request (Section 6.3.4).

    It always processes the full batch to maximise its own accuracy, yet
    reports that it complied with the requested fraction.  The enforcement
    policy must detect the excess consumption and disable it.
    """

    name = "p2p-detector-selfish"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("custom_shedding", True)
        super().__init__(**kwargs)

    def shed_load(self, batch: Batch, target_fraction: float) -> float:
        self._sampling_rate = 1.0
        self._scan_batch(batch)       # ignores the request entirely
        return float(target_fraction)  # ...and lies about it


class BuggyP2PDetectorQuery(P2PDetectorQuery):
    """A buggy variant whose custom method sheds far too little (Section 6.3.5).

    The implementation confuses the target fraction with its square root, so
    it systematically consumes more cycles than it was granted without any
    malicious intent.  The enforcement policy corrects and eventually
    disables it.
    """

    name = "p2p-detector-buggy"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("custom_shedding", True)
        super().__init__(**kwargs)

    def shed_load(self, batch: Batch, target_fraction: float) -> float:
        buggy_fraction = float(np.sqrt(min(1.0, max(0.0, target_fraction))))
        return super().shed_load(batch, buggy_fraction)
