"""High-watermark query: peak link utilisation over time (Table 2.2).

Tracks the maximum traffic volume observed in any sub-interval (one time bin)
within the measurement interval.  Cost is linear in the number of packets.
"""

from __future__ import annotations

from typing import Dict

from ..core.sampling import scale_estimate
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query


class HighWatermarkQuery(Query):
    """High watermark of link utilisation (bytes per time bin)."""

    name = "high-watermark"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.15
    measurement_interval = 1.0

    #: Shard watermarks merge by summation, not maximum, per time bin: each
    #: shard's watermark is the peak of *its slice* of the stream, and the
    #: global peak bin is the one where the summed slices peak.  Because all
    #: shards observe the same bin timeline, summing per-shard maxima
    #: over-estimates only when shards peak in different bins — taking the
    #: per-shard maximum would instead systematically under-estimate by
    #: roughly a factor of N.  The sum is the standard mergeable upper
    #: bound and is exact whenever the traffic peak is stream-wide.
    RESULT_MERGE = {"watermark_bytes": "sum", "watermark_packets": "sum"}

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._watermark_bytes = 0.0
        self._watermark_packets = 0.0

    def reset(self) -> None:
        super().reset()
        self._watermark_bytes = 0.0
        self._watermark_packets = 0.0

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        self.charge("counter_update", 2 * n)
        bin_bytes = scale_estimate(batch.byte_count, sampling_rate)
        bin_packets = scale_estimate(n, sampling_rate)
        self._watermark_bytes = max(self._watermark_bytes, bin_bytes)
        self._watermark_packets = max(self._watermark_packets, bin_packets)

    def interval_result(self) -> Dict[str, float]:
        self.charge("flush")
        result = {
            "watermark_bytes": self._watermark_bytes,
            "watermark_packets": self._watermark_packets,
        }
        self._watermark_bytes = 0.0
        self._watermark_packets = 0.0
        return result
