"""Flows query: per-flow classification and active-flow count (Table 2.2).

Maintains a 5-tuple flow table (as NetFlow would) and reports the number of
active flows per measurement interval.  Its cost depends both on the number
of packets (lookups) and on the number of *new* flows (insertions), which is
why it needs multiple features to be predicted well (Figure 3.3/3.4).

The query uses flow sampling so the active-flow estimate stays unbiased:
under flow sampling with rate ``p`` the expected number of sampled flows is
``p`` times the true count.
"""

from __future__ import annotations

from typing import Dict

from ..core.aggregate import KeyedAccumulator
from ..core.sampling import scale_estimate
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_FLOW, Query


class FlowsQuery(Query):
    """Counts active 5-tuple flows per measurement interval.

    The flow table is a column-free :class:`KeyedAccumulator` (a sorted
    array of 64-bit flow keys), so the per-batch membership test (which
    flows are new?) is one vectorised table update instead of a Python
    loop.
    """

    name = "flows"
    sampling_method = SAMPLING_FLOW
    minimum_sampling_rate = 0.05
    measurement_interval = 1.0

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._flow_table = KeyedAccumulator()
        self._flow_estimate = 0.0
        self._packets = 0.0

    def reset(self) -> None:
        super().reset()
        self._flow_table.reset()
        self._flow_estimate = 0.0
        self._packets = 0.0

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        self._packets += scale_estimate(n, sampling_rate)
        # Every packet performs a lookup in the flow table.
        self.charge("hash_lookup", n)
        if n == 0:
            return
        n_new = self._flow_table.observe(batch.unique_aggregate_hashes(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto")))
        # New flows pay the insertion cost, the rest only an in-place update.
        self.charge("hash_insert", n_new)
        self.charge("hash_update", n - n_new)
        # Scale the newly observed flows by the inverse of the sampling rate
        # of the batch in which they first appeared, so the estimate stays
        # unbiased even when the rate changes from bin to bin.
        self._flow_estimate += scale_estimate(n_new, sampling_rate)

    def interval_result(self) -> Dict[str, float]:
        self.charge("flush")
        self.charge("hash_update", len(self._flow_table))
        result = {
            "flows": self._flow_estimate,
            "packets": self._packets,
        }
        self._flow_table.reset()
        self._flow_estimate = 0.0
        self._packets = 0.0
        return result
