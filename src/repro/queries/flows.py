"""Flows query: per-flow classification and active-flow count (Table 2.2).

Maintains a 5-tuple flow table (as NetFlow would) and reports the number of
active flows per measurement interval.  Its cost depends both on the number
of packets (lookups) and on the number of *new* flows (insertions), which is
why it needs multiple features to be predicted well (Figure 3.3/3.4).

The query uses flow sampling so the active-flow estimate stays unbiased:
under flow sampling with rate ``p`` the expected number of sampled flows is
``p`` times the true count.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.sampling import scale_estimate
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_FLOW, Query


class FlowsQuery(Query):
    """Counts active 5-tuple flows per measurement interval.

    The flow table is a sorted array of 64-bit flow keys, so the per-batch
    membership test (which flows are new?) is a single vectorised
    ``np.isin`` over the batch's unique keys instead of a Python loop.
    """

    name = "flows"
    sampling_method = SAMPLING_FLOW
    minimum_sampling_rate = 0.05
    measurement_interval = 1.0

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._flow_table = np.empty(0, dtype=np.uint64)
        self._flow_estimate = 0.0
        self._packets = 0.0

    def reset(self) -> None:
        super().reset()
        self._flow_table = np.empty(0, dtype=np.uint64)
        self._flow_estimate = 0.0
        self._packets = 0.0

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        self._packets += scale_estimate(n, sampling_rate)
        # Every packet performs a lookup in the flow table.
        self.charge("hash_lookup", n)
        if n == 0:
            return
        keys = batch.aggregate_hashes(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"))
        unique_keys = np.unique(keys)
        positions = np.searchsorted(self._flow_table, unique_keys)
        known = np.zeros(len(unique_keys), dtype=bool)
        in_range = positions < self._flow_table.size
        known[in_range] = (self._flow_table[positions[in_range]] ==
                           unique_keys[in_range])
        new_keys = unique_keys[~known]
        # New flows pay the insertion cost, the rest only an in-place update.
        self.charge("hash_insert", len(new_keys))
        self.charge("hash_update", n - len(new_keys))
        if new_keys.size:
            self._flow_table = np.insert(self._flow_table, positions[~known],
                                         new_keys)
        # Scale the newly observed flows by the inverse of the sampling rate
        # of the batch in which they first appeared, so the estimate stays
        # unbiased even when the rate changes from bin to bin.
        self._flow_estimate += scale_estimate(len(new_keys), sampling_rate)

    def interval_result(self) -> Dict[str, float]:
        self.charge("flush")
        self.charge("hash_update", self._flow_table.size)
        result = {
            "flows": self._flow_estimate,
            "packets": self._packets,
        }
        self._flow_table = np.empty(0, dtype=np.uint64)
        self._flow_estimate = 0.0
        self._packets = 0.0
        return result
