"""Standard CoMo query set (Table 2.2) plus the Chapter 6 misbehaving variants.

The :func:`standard_queries` factory returns fresh instances of the query set
used throughout the evaluation; experiments select subsets by name.

On top of the name registry sits the declarative :class:`QuerySpec` layer: a
frozen, hashable, JSON-serialisable value object naming a query *kind*, its
constructor keyword arguments and an optional packet-filter expression.
Specs are what :class:`repro.SystemConfig` carries in its ``queries`` field,
what the scenario engine threads through process pools, and what the
``python -m repro.replay --queries`` flag parses — one type from the shell
to the shard workers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..monitor import filters as filter_lib
from ..monitor.filters import Filter
from ..monitor.query import Query
from .application import ApplicationQuery
from .autofocus import AutofocusQuery
from .counter import CounterQuery
from .flows import FlowsQuery
from .high_watermark import HighWatermarkQuery
from .p2p_detector import (BuggyP2PDetectorQuery, P2PDetectorQuery,
                           SelfishP2PDetectorQuery)
from .pattern_search import PatternSearchQuery
from .super_sources import SuperSourcesQuery
from .top_k import TopKQuery
from .trace import TraceQuery

__all__ = [
    "ApplicationQuery",
    "AutofocusQuery",
    "CounterQuery",
    "FlowsQuery",
    "HighWatermarkQuery",
    "P2PDetectorQuery",
    "SelfishP2PDetectorQuery",
    "BuggyP2PDetectorQuery",
    "PatternSearchQuery",
    "SuperSourcesQuery",
    "TopKQuery",
    "TraceQuery",
    "QUERY_CLASSES",
    "MERGE_EXACTNESS",
    "MERGE_EXACT_KINDS",
    "QuerySpec",
    "standard_queries",
    "make_query",
    "build_queries",
    "load_query_specs",
    "parse_filter",
    "parse_query_specs",
]

#: Name -> class for the standard query set.
QUERY_CLASSES: Dict[str, type] = {
    "application": ApplicationQuery,
    "autofocus": AutofocusQuery,
    "counter": CounterQuery,
    "flows": FlowsQuery,
    "high-watermark": HighWatermarkQuery,
    "p2p-detector": P2PDetectorQuery,
    "pattern-search": PatternSearchQuery,
    "super-sources": SuperSourcesQuery,
    "top-k": TopKQuery,
    "trace": TraceQuery,
}

#: Merge exactness per query kind: how the ``RESULT_MERGE`` fold of a
#: flow-affine partition relates to a single instance over the whole
#: stream.  ``"exact"`` — bit-identical result values (per-flow state never
#: spans partitions, counters sum).  ``"prefix"`` — the merged ranking is an
#: exact prefix of the whole-stream one with exact volumes (top-k, once the
#: widest member ranking fixes the recovered ``k``).  ``"union"`` — the
#: merged report is the union of per-partition reports (autofocus clusters;
#: per-partition thresholds differ from the global one).  ``"bounded"`` — a
#: deterministic ``[true, N * true]`` bracket (high-watermark peaks sum
#: across partitions; a source's distinct-destination counts can double
#: count).  The fleet tier's federated≡single-node identity check covers
#: exactly the ``"exact"`` kinds (:data:`MERGE_EXACT_KINDS`).
MERGE_EXACTNESS: Dict[str, str] = {
    "application": "exact",
    "autofocus": "union",
    "counter": "exact",
    "flows": "exact",
    "high-watermark": "bounded",
    "p2p-detector": "exact",
    "pattern-search": "exact",
    "super-sources": "bounded",
    "top-k": "prefix",
    "trace": "exact",
}

#: Kinds whose federated result is bit-identical to a single-node run.
MERGE_EXACT_KINDS: Tuple[str, ...] = tuple(sorted(
    kind for kind, exactness in MERGE_EXACTNESS.items()
    if exactness == "exact"))

#: The seven queries of the Chapter 3/4 validation (Table 3.2).
VALIDATION_SEVEN = (
    "application", "counter", "flows", "high-watermark",
    "pattern-search", "top-k", "trace",
)

#: The nine queries of the Chapter 5 evaluation (Table 5.2).
EVALUATION_NINE = (
    "application", "autofocus", "counter", "flows", "high-watermark",
    "pattern-search", "super-sources", "top-k", "trace",
)


def make_query(kind: str, **kwargs) -> Query:
    """Instantiate one standard query by its registry name.

    Keyword arguments are forwarded to the query constructor; in particular
    ``name=...`` gives the instance a distinct name so several copies of the
    same query class can run side by side.
    """
    try:
        cls = QUERY_CLASSES[kind]
    except KeyError:
        raise KeyError(f"unknown query {kind!r}; "
                       f"available: {sorted(QUERY_CLASSES)}") from None
    return cls(**kwargs)


def standard_queries(names: Optional[Iterable[str]] = None) -> List[Query]:
    """Fresh instances of the named queries (default: all ten)."""
    selected = list(names) if names is not None else sorted(QUERY_CLASSES)
    return [make_query(name) for name in selected]


# ----------------------------------------------------------------------
# Declarative filter expressions
# ----------------------------------------------------------------------
def parse_filter(spec: Optional[str]) -> Optional[Filter]:
    """Build a packet filter from a small declarative expression.

    Supported expressions (``None``/``"all"`` mean no filtering):

    ========================  ===========================================
    ``"all"``                 every packet
    ``"none"``                no packet (useful in tests)
    ``"tcp"`` / ``"udp"``     by transport protocol
    ``"proto:<n>"``           by IP protocol number
    ``"port:<n>[:dir]"``      by port; ``dir`` is ``src``/``dst``/``either``
    ``"subnet:<net>/<len>"``  by address prefix (integer network)
    ``"size>=<n>"``           by minimum wire size
    ========================  ===========================================
    """
    if spec is None:
        return None
    expression = str(spec).strip()
    if not expression or expression == "all":
        return None
    if expression == "none":
        return filter_lib.no_packets()
    if expression == "tcp":
        return filter_lib.tcp()
    if expression == "udp":
        return filter_lib.udp()
    if expression.startswith("proto:"):
        return filter_lib.proto(int(expression.split(":", 1)[1]))
    if expression.startswith("port:"):
        parts = expression.split(":")
        direction = parts[2] if len(parts) > 2 else "either"
        return filter_lib.port(int(parts[1]), direction=direction)
    if expression.startswith("subnet:"):
        network, prefix_len = expression.split(":", 1)[1].split("/")
        return filter_lib.subnet(int(network), int(prefix_len))
    if expression.startswith("size>="):
        return filter_lib.size_at_least(int(expression[len("size>="):]))
    raise ValueError(f"unknown filter expression {expression!r}; see "
                     "repro.queries.parse_filter for the supported forms")


# ----------------------------------------------------------------------
# Declarative query specs
# ----------------------------------------------------------------------
#: Tags marking container types inside the canonical (hashable) kwargs
#: encoding, so :func:`_plain` can rebuild dicts as dicts and sequences as
#: lists instead of flattening everything to tuples.
_MAPPING_TAG = "__mapping__"
_SEQUENCE_TAG = "__sequence__"


def _canonical(value: Any) -> Any:
    """Recursively convert lists/dicts to tagged, hashable tuples."""
    if isinstance(value, dict):
        return (_MAPPING_TAG, tuple(sorted((str(k), _canonical(v))
                                           for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return (_SEQUENCE_TAG, tuple(_canonical(item) for item in value))
    return value


def _plain(value: Any) -> Any:
    """Inverse of :func:`_canonical` (sequences come back as lists)."""
    if isinstance(value, tuple) and len(value) == 2:
        if value[0] == _MAPPING_TAG:
            return {key: _plain(item) for key, item in value[1]}
        if value[0] == _SEQUENCE_TAG:
            return [_plain(item) for item in value[1]]
    return value


@dataclass(frozen=True)
class QuerySpec:
    """Declarative description of one query instance.

    A frozen value object — hashable (so scenario grids can group by query
    set) and JSON-serialisable (so it rides inside
    :meth:`repro.SystemConfig.to_dict`).  ``kwargs`` accepts a plain dict at
    construction and is canonicalised to a sorted tuple of pairs; read it
    back with :attr:`arguments`.

    Examples
    --------
    >>> QuerySpec("top-k", {"k": 5, "name": "top-5"})
    QuerySpec(kind='top-k', kwargs=(('k', 5), ('name', 'top-5')), filter=None)
    >>> QuerySpec("counter", filter="tcp").build()
    CounterQuery(name='counter')
    """

    kind: str
    kwargs: Any = field(default=())
    filter: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_CLASSES:
            raise KeyError(f"unknown query kind {self.kind!r}; "
                           f"available: {sorted(QUERY_CLASSES)}")
        raw = self.kwargs
        if raw is None:
            raw = ()
        if not isinstance(raw, dict):
            raw = dict(raw)  # pairs round-trip
        # The stored form is the sorted (key, canonical value) pair tuple of
        # the kwargs mapping; nested containers are tagged so .arguments
        # can rebuild dicts as dicts.
        object.__setattr__(self, "kwargs", _canonical(raw)[1])
        if self.filter is not None:
            object.__setattr__(self, "filter", str(self.filter))
            parse_filter(self.filter)  # fail eagerly on bad expressions

    # ------------------------------------------------------------------
    @property
    def arguments(self) -> Dict[str, Any]:
        """The constructor keyword arguments as a plain dict."""
        return {key: _plain(value) for key, value in self.kwargs}

    @property
    def instance_name(self) -> str:
        """The name the built query instance will carry."""
        explicit = self.arguments.get("name")
        return explicit if explicit is not None else self.kind

    def build(self) -> Query:
        """Instantiate the described query (fresh state every call)."""
        kwargs = self.arguments
        packet_filter = parse_filter(self.filter)
        if packet_filter is not None:
            kwargs["packet_filter"] = packet_filter
        return make_query(self.kind, **kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable representation."""
        data: Dict[str, Any] = {"kind": self.kind}
        if self.kwargs:
            data["kwargs"] = self.arguments
        if self.filter is not None:
            data["filter"] = self.filter
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuerySpec":
        """Rebuild a spec from :meth:`to_dict` output (strict keys)."""
        unknown = sorted(set(data) - {"kind", "kwargs", "filter"})
        if unknown:
            raise ValueError(f"unknown QuerySpec fields {unknown}; valid "
                             "fields: ['filter', 'kind', 'kwargs']")
        return cls(kind=data["kind"], kwargs=data.get("kwargs") or (),
                   filter=data.get("filter"))

    @classmethod
    def parse(cls, spec: Union[str, Dict, Tuple, "QuerySpec"]) -> "QuerySpec":
        """Coerce any accepted spec shape into a :class:`QuerySpec`.

        Accepts an existing spec, a registry name (``"flows"``), a
        ``(name, kwargs)`` pair (the historical ``build_queries`` shape) or
        a dict (``{"kind": ..., "kwargs": ..., "filter": ...}``).
        """
        if isinstance(spec, QuerySpec):
            return spec
        if isinstance(spec, str):
            return cls(kind=spec)
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if isinstance(spec, (tuple, list)) and len(spec) == 2:
            kind, kwargs = spec
            return cls(kind=str(kind), kwargs=dict(kwargs))
        raise TypeError(f"cannot interpret {spec!r} as a query spec")


def parse_query_specs(specs: Union[str, Iterable]) -> Tuple[QuerySpec, ...]:
    """Normalise a query-mix description into a tuple of specs.

    ``specs`` is a comma-separated name string (``"counter,flows,top-k"``)
    or an iterable whose items :meth:`QuerySpec.parse` accepts.  Instance
    names must be unique — two copies of one kind need distinct
    ``name=...`` kwargs.
    """
    if isinstance(specs, str):
        items: Iterable = [part.strip() for part in specs.split(",")
                           if part.strip()]
    else:
        items = specs
    parsed = tuple(QuerySpec.parse(item) for item in items)
    names = [spec.instance_name for spec in parsed]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate query instance names {duplicates}; give repeated "
            "kinds distinct names via kwargs={'name': ...}")
    return parsed


def load_query_specs(path) -> Tuple[QuerySpec, ...]:
    """Load a query mix from a JSON file.

    The document is either a list (of names and/or spec dicts) or an object
    with a ``"queries"`` list — the format ``python -m repro.replay
    --queries specs.json`` consumes.
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        if "queries" not in data:
            raise ValueError(f"{path}: expected a list or an object with a "
                             "'queries' key")
        data = data["queries"]
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON list of query specs")
    return parse_query_specs(data)


def build_queries(specs: Union[str, Iterable]) -> List[Query]:
    """Fresh query instances for a query-mix description."""
    return [spec.build() for spec in parse_query_specs(specs)]
