"""Standard CoMo query set (Table 2.2) plus the Chapter 6 misbehaving variants.

The :func:`standard_queries` factory returns fresh instances of the query set
used throughout the evaluation; experiments select subsets by name.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..monitor.query import Query
from .application import ApplicationQuery
from .autofocus import AutofocusQuery
from .counter import CounterQuery
from .flows import FlowsQuery
from .high_watermark import HighWatermarkQuery
from .p2p_detector import (BuggyP2PDetectorQuery, P2PDetectorQuery,
                           SelfishP2PDetectorQuery)
from .pattern_search import PatternSearchQuery
from .super_sources import SuperSourcesQuery
from .top_k import TopKQuery
from .trace import TraceQuery

__all__ = [
    "ApplicationQuery",
    "AutofocusQuery",
    "CounterQuery",
    "FlowsQuery",
    "HighWatermarkQuery",
    "P2PDetectorQuery",
    "SelfishP2PDetectorQuery",
    "BuggyP2PDetectorQuery",
    "PatternSearchQuery",
    "SuperSourcesQuery",
    "TopKQuery",
    "TraceQuery",
    "QUERY_CLASSES",
    "standard_queries",
    "make_query",
]

#: Name -> class for the standard query set.
QUERY_CLASSES: Dict[str, type] = {
    "application": ApplicationQuery,
    "autofocus": AutofocusQuery,
    "counter": CounterQuery,
    "flows": FlowsQuery,
    "high-watermark": HighWatermarkQuery,
    "p2p-detector": P2PDetectorQuery,
    "pattern-search": PatternSearchQuery,
    "super-sources": SuperSourcesQuery,
    "top-k": TopKQuery,
    "trace": TraceQuery,
}

#: The seven queries of the Chapter 3/4 validation (Table 3.2).
VALIDATION_SEVEN = (
    "application", "counter", "flows", "high-watermark",
    "pattern-search", "top-k", "trace",
)

#: The nine queries of the Chapter 5 evaluation (Table 5.2).
EVALUATION_NINE = (
    "application", "autofocus", "counter", "flows", "high-watermark",
    "pattern-search", "super-sources", "top-k", "trace",
)


def make_query(kind: str, **kwargs) -> Query:
    """Instantiate one standard query by its registry name.

    Keyword arguments are forwarded to the query constructor; in particular
    ``name=...`` gives the instance a distinct name so several copies of the
    same query class can run side by side.
    """
    try:
        cls = QUERY_CLASSES[kind]
    except KeyError:
        raise KeyError(f"unknown query {kind!r}; "
                       f"available: {sorted(QUERY_CLASSES)}") from None
    return cls(**kwargs)


def standard_queries(names: Optional[Iterable[str]] = None) -> List[Query]:
    """Fresh instances of the named queries (default: all ten)."""
    selected = list(names) if names is not None else sorted(QUERY_CLASSES)
    return [make_query(name) for name in selected]
