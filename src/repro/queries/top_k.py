"""Top-k query: ranking of the most popular destination addresses (Table 2.2).

Maintains per-destination byte counters and reports the ``k`` destinations
that received the most traffic in each measurement interval.  The accuracy
metric is the number of misranked pairs between the reported and the true
ranking (Section 2.2.1), so the query is fairly sensitive to sampling — its
minimum sampling rate in Table 5.2 is 0.57.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.sampling import scale_estimates
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query


class TopKQuery(Query):
    """Ranking of the top-k destination IP addresses by byte volume.

    The per-destination byte table is a pair of parallel arrays (sorted
    destination keys, accumulated volumes), so the per-batch membership
    test and the per-destination accumulation are pure array operations —
    no Python loop over destinations.
    """

    name = "top-k"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.57
    measurement_interval = 1.0

    def __init__(self, k: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        self.k = int(k)
        self._dst_keys = np.empty(0, dtype=np.int64)
        self._dst_bytes = np.empty(0, dtype=np.float64)

    def reset(self) -> None:
        super().reset()
        self._dst_keys = np.empty(0, dtype=np.int64)
        self._dst_bytes = np.empty(0, dtype=np.float64)

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        if n == 0:
            self.charge("hash_lookup", 0)
            return
        unique_dst, inverse = np.unique(batch.dst_ip, return_inverse=True)
        byte_counts = np.bincount(inverse, weights=batch.size)
        unique_dst = unique_dst.astype(np.int64)
        positions = np.searchsorted(self._dst_keys, unique_dst)
        found = np.zeros(len(unique_dst), dtype=bool)
        in_range = positions < self._dst_keys.size
        found[in_range] = (self._dst_keys[positions[in_range]] ==
                           unique_dst[in_range])
        new_entries = int(len(unique_dst) - found.sum())
        # One lookup per packet, insertions for previously unseen keys.
        self.charge("hash_lookup", n)
        self.charge("hash_insert", new_entries)
        self.charge("hash_update", len(unique_dst) - new_entries)
        scaled = scale_estimates(byte_counts, sampling_rate)
        self._dst_bytes[positions[found]] += scaled[found]
        if new_entries:
            insert_at = positions[~found]
            self._dst_keys = np.insert(self._dst_keys, insert_at,
                                       unique_dst[~found])
            self._dst_bytes = np.insert(self._dst_bytes, insert_at,
                                        scaled[~found])

    def _ranking(self) -> List[Tuple[int, float]]:
        # Primary key: volume descending; ties broken by smaller address.
        order = np.lexsort((self._dst_keys, -self._dst_bytes))[:self.k]
        return [(int(self._dst_keys[i]), float(self._dst_bytes[i]))
                for i in order]

    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        # Ranking cost: n log n comparisons over the table.
        table_size = int(self._dst_keys.size)
        self.charge("sort_op", table_size * max(1.0, np.log2(max(table_size, 2))))
        top = self._ranking()
        result = {
            "ranking": [dst for dst, _ in top],
            "bytes": {dst: volume for dst, volume in top},
            "table_size": float(table_size),
        }
        self._dst_keys = np.empty(0, dtype=np.int64)
        self._dst_bytes = np.empty(0, dtype=np.float64)
        return result

    @classmethod
    def merge_interval_results(cls, results):
        """Merge per-shard rankings by re-ranking the summed byte volumes.

        Each shard reports its local top-k; the merged ranking re-sorts the
        union of those entries by total volume.  A destination spread across
        shards can in principle be under-counted when it falls outside a
        shard's local top-k — the classical mergeable-summary caveat — but
        with flow-affine partitioning a destination's traffic concentrates
        on few shards, so the merged ranking matches the unsharded one in
        practice (the sharding tests pin the tolerance).
        """
        results = list(results)
        if len(results) <= 1:
            return dict(results[0]) if results else {}
        volumes: Dict[int, float] = {}
        for result in results:
            for dst, nbytes in result["bytes"].items():
                volumes[dst] = volumes.get(dst, 0.0) + nbytes
        k = max(len(result["ranking"]) for result in results)
        top = sorted(volumes.items(), key=lambda item: (-item[1], item[0]))[:k]
        return {
            "ranking": [dst for dst, _ in top],
            "bytes": {dst: volume for dst, volume in top},
            "table_size": float(sum(r["table_size"] for r in results)),
        }
