"""Top-k query: ranking of the most popular destination addresses (Table 2.2).

Maintains per-destination byte counters and reports the ``k`` destinations
that received the most traffic in each measurement interval.  The accuracy
metric is the number of misranked pairs between the reported and the true
ranking (Section 2.2.1), so the query is fairly sensitive to sampling — its
minimum sampling rate in Table 5.2 is 0.57.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.aggregate import KeyedAccumulator
from ..core.sampling import scale_estimates
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query


class TopKQuery(Query):
    """Ranking of the top-k destination IP addresses by byte volume.

    The per-destination byte table is a :class:`KeyedAccumulator` (sorted
    destination keys with a parallel volume column), so the per-batch
    membership test and the per-destination accumulation are pure array
    operations — no Python loop over destinations.
    """

    name = "top-k"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.57
    measurement_interval = 1.0

    #: ``ranking`` and the truncated ``bytes`` map are recomputed from the
    #: merged volumes by :meth:`derive_merged`; ``table_size`` sums.
    RESULT_MERGE = {"ranking": "derived", "bytes": "derived",
                    "table_size": "sum"}

    def __init__(self, k: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        self.k = int(k)
        self._table = KeyedAccumulator(columns=("bytes",))

    def reset(self) -> None:
        super().reset()
        self._table.reset()

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        if n == 0:
            self.charge("hash_lookup", 0)
            return
        unique_dst, inverse = batch.unique_values("dst_ip")
        byte_counts = np.bincount(inverse, weights=batch.size)
        scaled = scale_estimates(byte_counts, sampling_rate)
        new_entries = self._table.observe(unique_dst.astype(np.uint64),
                                          bytes=scaled)
        # One lookup per packet, insertions for previously unseen keys.
        self.charge("hash_lookup", n)
        self.charge("hash_insert", new_entries)
        self.charge("hash_update", len(unique_dst) - new_entries)

    def _ranking(self) -> List[Tuple[int, float]]:
        # Primary key: volume descending; ties broken by smaller address.
        return self._table.top(self.k, "bytes")

    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        # Ranking cost: n log n comparisons over the table.
        table_size = len(self._table)
        self.charge("sort_op", table_size * max(1.0, np.log2(max(table_size, 2))))
        top = self._ranking()
        result = {
            "ranking": [dst for dst, _ in top],
            "bytes": {dst: volume for dst, volume in top},
            "table_size": float(table_size),
        }
        self._table.reset()
        return result

    @classmethod
    def derive_merged(cls, merged: Dict, results: Sequence[Dict]) -> Dict:
        """Re-rank the summed per-partition volumes; truncate the ranking only.

        Each partition reports its local top-k; the merged ranking re-sorts
        the union of those entries by total volume (``k`` recovered from the
        widest member ranking).  The merged ``bytes`` map keeps the *full*
        summed volume table, ordered by (volume desc, address asc), rather
        than truncating it to the ranking: truncating at merge time would
        make nested merges lose volume mass an outer merge still needs, so
        the untruncated table is what makes this fold associative — any
        grouping of partitions sums the same volumes, and ``k`` recovery by
        ``max`` is associative because an inner merged ranking is always as
        long as its widest member.  A destination spread across partitions
        can in principle be under-counted when it falls outside a member's
        local top-k — the classical mergeable-summary caveat — but with
        flow-affine partitioning a destination's traffic concentrates on
        few partitions, so the merged ranking matches the unsharded one in
        practice (the sharding tests pin the tolerance).
        """
        volumes: Dict[int, float] = {}
        for result in results:
            for dst, nbytes in result.get("bytes", {}).items():
                volumes[dst] = volumes.get(dst, 0.0) + nbytes
        k = max((len(result["ranking"]) for result in results
                 if "ranking" in result), default=0)
        ordered = sorted(volumes.items(), key=lambda item: (-item[1], item[0]))
        merged["ranking"] = [dst for dst, _ in ordered[:k]]
        merged["bytes"] = dict(ordered)
        return merged
