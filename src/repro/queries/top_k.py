"""Top-k query: ranking of the most popular destination addresses (Table 2.2).

Maintains per-destination byte counters and reports the ``k`` destinations
that received the most traffic in each measurement interval.  The accuracy
metric is the number of misranked pairs between the reported and the true
ranking (Section 2.2.1), so the query is fairly sensitive to sampling — its
minimum sampling rate in Table 5.2 is 0.57.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from ..core.sampling import scale_estimate
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query


class TopKQuery(Query):
    """Ranking of the top-k destination IP addresses by byte volume."""

    name = "top-k"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.57
    measurement_interval = 1.0

    def __init__(self, k: int = 10, **kwargs) -> None:
        super().__init__(**kwargs)
        self.k = int(k)
        self._bytes_by_dst: Dict[int, float] = defaultdict(float)

    def reset(self) -> None:
        super().reset()
        self._bytes_by_dst = defaultdict(float)

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        if n == 0:
            self.charge("hash_lookup", 0)
            return
        unique_dst, inverse = np.unique(batch.dst_ip, return_inverse=True)
        byte_counts = np.bincount(inverse, weights=batch.size)
        new_entries = sum(1 for dst in unique_dst
                          if int(dst) not in self._bytes_by_dst)
        # One lookup per packet, insertions for previously unseen keys.
        self.charge("hash_lookup", n)
        self.charge("hash_insert", new_entries)
        self.charge("hash_update", len(unique_dst) - new_entries)
        for dst, nbytes in zip(unique_dst, byte_counts):
            self._bytes_by_dst[int(dst)] += scale_estimate(nbytes, sampling_rate)

    def _ranking(self) -> List[Tuple[int, float]]:
        entries = sorted(self._bytes_by_dst.items(),
                         key=lambda item: (-item[1], item[0]))
        return entries[:self.k]

    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        # Ranking cost: n log n comparisons over the table.
        table_size = len(self._bytes_by_dst)
        self.charge("sort_op", table_size * max(1.0, np.log2(max(table_size, 2))))
        top = self._ranking()
        result = {
            "ranking": [dst for dst, _ in top],
            "bytes": {dst: volume for dst, volume in top},
            "table_size": float(table_size),
        }
        self._bytes_by_dst = defaultdict(float)
        return result
