"""Autofocus query: high-volume traffic clusters per subnet (Table 2.2).

A uni-dimensional version of the Autofocus algorithm (Estan et al.): traffic
is aggregated hierarchically over destination prefixes (/8, /16, /24, /32)
and the query reports the clusters whose volume exceeds a threshold fraction
of the total traffic, after removing clusters already explained by a more
specific reported prefix (the "delta report").

The per-level prefix tables are :class:`KeyedAccumulator` kernels, so the
per-batch accumulation is one keyed array update per level instead of a
Python loop over prefixes.

Accuracy under sampling is the fraction of reported clusters that match the
reference report (Section 2.2.1), which makes the query relatively sensitive
to sampling — its minimum sampling rate in Table 5.2 is 0.69.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from ..core.aggregate import KeyedAccumulator
from ..core.sampling import scale_estimate, scale_estimates
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query, merge_union

#: Prefix lengths of the uni-dimensional hierarchy, most specific first.
PREFIX_LENGTHS: Tuple[int, ...] = (32, 24, 16, 8)


class AutofocusQuery(Query):
    """Reports destination-prefix clusters carrying a significant volume."""

    name = "autofocus"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.69
    measurement_interval = 1.0

    #: Per-shard delta reports cannot be re-thresholded without the full
    #: prefix tables, so the merged report is the union of the clusters any
    #: shard found significant — a superset of the unsharded report (a
    #: cluster at 1/N of the global threshold on one shard may fall under
    #: the global one).  Total volume is additive.
    RESULT_MERGE = {
        "clusters": merge_union(sort_key=lambda c: (c[1], c[0]),
                                coerce=tuple),
        "total_bytes": "sum",
    }

    def __init__(self, threshold_fraction: float = 0.02, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.0 < threshold_fraction < 1.0:
            raise ValueError("threshold_fraction must be in (0, 1)")
        self.threshold_fraction = float(threshold_fraction)
        self._volumes: Dict[int, KeyedAccumulator] = {
            plen: KeyedAccumulator(columns=("bytes",))
            for plen in PREFIX_LENGTHS}
        self._total_bytes = 0.0

    def reset(self) -> None:
        super().reset()
        for table in self._volumes.values():
            table.reset()
        self._total_bytes = 0.0

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        # One tree node visit per prefix level per packet.
        self.charge("tree_op", n * len(PREFIX_LENGTHS))
        if n == 0:
            return
        self._total_bytes += scale_estimate(batch.byte_count, sampling_rate)
        # Aggregate the finest level from the packets, then fold each
        # coarser level from the previous one: prefix volumes are integer
        # byte sums, so the two-stage aggregation is exact (scaling happens
        # after the per-level fold, as in the per-packet formulation).
        unique_dst, inverse = batch.unique_values("dst_ip")
        keys = unique_dst.astype(np.uint64)
        volumes = np.bincount(inverse, weights=batch.size)
        previous_plen = 32
        for plen in PREFIX_LENGTHS:
            if plen != previous_plen:
                coarse = keys >> np.uint64(previous_plen - plen)
                keys, index = np.unique(coarse, return_inverse=True)
                volumes = np.bincount(index, weights=volumes)
                previous_plen = plen
            self._volumes[plen].observe(
                keys, bytes=scale_estimates(volumes, sampling_rate))

    def _delta_report(self) -> List[Tuple[int, int]]:
        """Clusters above threshold not explained by a more specific cluster."""
        threshold = self.threshold_fraction * max(self._total_bytes, 1.0)
        reported: List[Tuple[int, int]] = []
        explained: Dict[int, Set[int]] = {plen: set() for plen in PREFIX_LENGTHS}
        for level, plen in enumerate(PREFIX_LENGTHS):
            table = self._volumes[plen]
            keys = table.keys
            # Vectorised threshold cut; only the (few) significant
            # clusters go through the per-prefix delta logic.
            for i in np.flatnonzero(table.column("bytes") >= threshold):
                prefix = int(keys[i])
                if prefix in explained[plen]:
                    continue
                reported.append((prefix, plen))
                # Mark the ancestors of this prefix as explained.
                for coarser in PREFIX_LENGTHS[level + 1:]:
                    explained[coarser].add(prefix >> (plen - coarser))
        return reported

    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        self.charge("tree_op",
                    sum(len(t) for t in self._volumes.values()))
        clusters = self._delta_report()
        result = {
            "clusters": clusters,
            "total_bytes": self._total_bytes,
        }
        for table in self._volumes.values():
            table.reset()
        self._total_bytes = 0.0
        return result
