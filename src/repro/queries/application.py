"""Application query: port-based application classification (Table 2.2).

Maintains per-application packet and byte counters, where the application is
determined by the destination (or source) transport port.  Cost is linear in
the number of packets.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

import numpy as np

from ..core.sampling import scale_estimate
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query

#: Port-to-application mapping used by the classifier; anything else is
#: accounted under ``other``.
PORT_APPLICATIONS: Dict[int, str] = {
    80: "http",
    443: "https",
    53: "dns",
    25: "smtp",
    22: "ssh",
    6881: "p2p",
    6346: "p2p",
    8080: "http-alt",
}


class ApplicationQuery(Query):
    """Breaks traffic down into application classes by port number."""

    name = "application"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.03
    measurement_interval = 1.0

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._packets: Dict[str, float] = defaultdict(float)
        self._bytes: Dict[str, float] = defaultdict(float)

    def reset(self) -> None:
        super().reset()
        self._packets = defaultdict(float)
        self._bytes = defaultdict(float)

    @staticmethod
    def _classify(batch: Batch) -> Tuple[np.ndarray, list]:
        """Return per-packet application indices and the label list."""
        labels = sorted(set(PORT_APPLICATIONS.values())) + ["other"]
        label_index = {label: i for i, label in enumerate(labels)}
        app_idx = np.full(len(batch), label_index["other"], dtype=np.int64)
        for port, label in PORT_APPLICATIONS.items():
            mask = (batch.dst_port == port) | (batch.src_port == port)
            app_idx[mask] = label_index[label]
        return app_idx, labels

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        # One table lookup plus two counter updates per packet.
        self.charge("hash_lookup", n * 0.2)
        self.charge("counter_update", 2 * n)
        if n == 0:
            return
        app_idx, labels = self._classify(batch)
        pkt_counts = np.bincount(app_idx, minlength=len(labels))
        byte_counts = np.bincount(app_idx, weights=batch.size,
                                  minlength=len(labels))
        for i, label in enumerate(labels):
            if pkt_counts[i]:
                self._packets[label] += scale_estimate(pkt_counts[i],
                                                       sampling_rate)
                self._bytes[label] += scale_estimate(byte_counts[i],
                                                     sampling_rate)

    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        result = {
            "packets_by_app": dict(self._packets),
            "bytes_by_app": dict(self._bytes),
        }
        self._packets = defaultdict(float)
        self._bytes = defaultdict(float)
        return result
