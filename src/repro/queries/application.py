"""Application query: port-based application classification (Table 2.2).

Maintains per-application packet and byte counters, where the application is
determined by the destination (or source) transport port.  Cost is linear in
the number of packets.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.aggregate import KeyedAccumulator
from ..core.sampling import scale_estimates
from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query

#: Port-to-application mapping used by the classifier; anything else is
#: accounted under ``other``.
PORT_APPLICATIONS: Dict[int, str] = {
    80: "http",
    443: "https",
    53: "dns",
    25: "smtp",
    22: "ssh",
    6881: "p2p",
    6346: "p2p",
    8080: "http-alt",
}


class ApplicationQuery(Query):
    """Breaks traffic down into application classes by port number."""

    name = "application"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.03
    measurement_interval = 1.0

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._counters = KeyedAccumulator(columns=("packets", "bytes"))

    def reset(self) -> None:
        super().reset()
        self._counters.reset()

    @staticmethod
    def _labels() -> List[str]:
        """Application labels in class-index order."""
        return sorted(set(PORT_APPLICATIONS.values())) + ["other"]

    @staticmethod
    def _classify(batch: Batch) -> Tuple[np.ndarray, list]:
        """Return per-packet application indices and the label list."""
        labels = ApplicationQuery._labels()
        label_index = {label: i for i, label in enumerate(labels)}
        app_idx = np.full(len(batch), label_index["other"], dtype=np.int64)
        for port, label in PORT_APPLICATIONS.items():
            mask = (batch.dst_port == port) | (batch.src_port == port)
            app_idx[mask] = label_index[label]
        return app_idx, labels

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        # One table lookup plus two counter updates per packet.
        self.charge("hash_lookup", n * 0.2)
        self.charge("counter_update", 2 * n)
        if n == 0:
            return
        app_idx, labels = self._classify(batch)
        pkt_counts = np.bincount(app_idx, minlength=len(labels))
        byte_counts = np.bincount(app_idx, weights=batch.size,
                                  minlength=len(labels))
        seen = np.flatnonzero(pkt_counts)
        self._counters.observe(
            seen.astype(np.uint64),
            packets=scale_estimates(pkt_counts[seen], sampling_rate),
            bytes=scale_estimates(byte_counts[seen], sampling_rate))

    def interval_result(self) -> Dict[str, object]:
        self.charge("flush")
        labels = self._labels()
        result = {
            "packets_by_app": {labels[key]: value for key, value
                               in self._counters.items("packets")},
            "bytes_by_app": {labels[key]: value for key, value
                             in self._counters.items("bytes")},
        }
        self._counters.reset()
        return result
