"""Pattern-search query: byte-sequence identification in payloads (Table 2.2).

Searches every packet payload for a configurable byte signature using the
Boyer-Moore(-Horspool) algorithm the paper cites, whose cost is linear in the
number of scanned bytes.  Like the trace query, its accuracy under sampling
is defined as the fraction of packets processed.

The production path scans the whole batch in one
:func:`~repro.core.aggregate.payload_hits` sweep (a single C-level search
over the joined payloads) instead of a per-packet Python loop; the
``use_reference_search`` flag keeps the packet-at-a-time Boyer-Moore path
for documentation and differential testing.
"""

from __future__ import annotations

from typing import Dict

from ..monitor.packet import Batch
from ..monitor.query import SAMPLING_PACKET, Query
from ..traffic.generator import ATTACK_SIGNATURE


def boyer_moore_horspool(haystack: bytes, needle: bytes) -> int:
    """Return the index of ``needle`` in ``haystack`` or -1 if absent.

    Reference implementation of the search algorithm used by the query; the
    query itself delegates to the C-implemented ``bytes.find`` for speed, but
    this function documents (and is tested to match) the exact semantics and
    cost structure charged to the cycle meter.
    """
    n, m = len(haystack), len(needle)
    if m == 0:
        return 0
    if m > n:
        return -1
    shift = {byte: m - index - 1 for index, byte in enumerate(needle[:-1])}
    default_shift = m
    position = 0
    while position <= n - m:
        if haystack[position:position + m] == needle:
            return position
        next_char = haystack[position + m - 1]
        position += shift.get(next_char, default_shift)
    return -1


class PatternSearchQuery(Query):
    """Finds packets whose payload contains a byte signature."""

    name = "pattern-search"
    sampling_method = SAMPLING_PACKET
    minimum_sampling_rate = 0.10
    measurement_interval = 1.0
    needs_payload = True

    def __init__(self, pattern: bytes = ATTACK_SIGNATURE,
                 use_reference_search: bool = False, **kwargs) -> None:
        super().__init__(**kwargs)
        if not pattern:
            raise ValueError("pattern must be a non-empty byte string")
        self.pattern = bytes(pattern)
        self.use_reference_search = bool(use_reference_search)
        self._matches = 0.0
        self._packets_scanned = 0.0
        self._bytes_scanned = 0.0

    def reset(self) -> None:
        super().reset()
        self._matches = 0.0
        self._packets_scanned = 0.0
        self._bytes_scanned = 0.0

    def _search(self, payload: bytes) -> bool:
        if self.use_reference_search:
            return boyer_moore_horspool(payload, self.pattern) >= 0
        return payload.find(self.pattern) >= 0

    def update(self, batch: Batch, sampling_rate: float) -> None:
        n = len(batch)
        self.charge("packet", n)
        self._packets_scanned += n
        if n == 0:
            return
        if not batch.has_payloads:
            # Header-only traffic: nothing to scan, the cost stays per-packet.
            return
        if self.use_reference_search:
            scanned_bytes = 0
            matches = 0
            for payload in batch.payloads:
                scanned_bytes += len(payload)
                if payload and self._search(payload):
                    matches += 1
        else:
            hit = batch.payload_hits((self.pattern,))
            scanned_bytes = int(batch.payload_lengths().sum())
            matches = int(hit.sum())
        self.charge("regex_byte", scanned_bytes)
        self.charge("store_byte", matches * 64)
        self._bytes_scanned += scanned_bytes
        self._matches += matches

    def interval_result(self) -> Dict[str, float]:
        self.charge("flush")
        result = {
            "matches": self._matches,
            "packets_scanned": self._packets_scanned,
            "bytes_scanned": self._bytes_scanned,
        }
        self._matches = 0.0
        self._packets_scanned = 0.0
        self._bytes_scanned = 0.0
        return result
