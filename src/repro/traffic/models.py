"""Named trace presets modelled on the paper's datasets (Table 2.3).

The real CESCA / UPC / ABILENE / CENIC traces are not available; these
presets configure the synthetic generator so that the relative properties
that matter to the experiments are preserved:

* CESCA-I: header-only, moderate load;
* CESCA-II: full payloads, lower packet rate but payload-heavy;
* ABILENE: backbone-like, higher aggregate load, header-only;
* CENIC: backbone-like, very bursty, header-only;
* UPC-I: access-link, full payloads.

Durations are scaled down (seconds instead of 30 minutes) so the full
benchmark suite completes quickly; all experiments accept an explicit
profile for larger runs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..monitor.packet import PacketTrace
from .generator import TrafficProfile, generate_trace

#: Named profiles; durations/rates scaled for laptop-scale runs.
TRACE_PROFILES: Dict[str, TrafficProfile] = {
    "CESCA-I": TrafficProfile(
        name="CESCA-I",
        duration=30.0,
        flow_arrival_rate=260.0,
        burstiness=0.35,
        with_payloads=False,
    ),
    "CESCA-II": TrafficProfile(
        name="CESCA-II",
        duration=30.0,
        flow_arrival_rate=170.0,
        burstiness=0.30,
        with_payloads=True,
        mean_payload_bytes=220,
    ),
    "ABILENE": TrafficProfile(
        name="ABILENE",
        duration=30.0,
        flow_arrival_rate=420.0,
        burstiness=0.25,
        with_payloads=False,
    ),
    "CENIC": TrafficProfile(
        name="CENIC",
        duration=30.0,
        flow_arrival_rate=330.0,
        burstiness=0.6,
        burst_period=4.0,
        with_payloads=False,
    ),
    "UPC-I": TrafficProfile(
        name="UPC-I",
        duration=30.0,
        flow_arrival_rate=230.0,
        burstiness=0.4,
        with_payloads=True,
        mean_payload_bytes=260,
    ),
}


def trace_profile(name: str, duration: float = None,
                  **overrides) -> TrafficProfile:
    """Return a copy of a named profile with optional overrides."""
    if name not in TRACE_PROFILES:
        raise KeyError(f"unknown trace preset {name!r}; "
                       f"available: {sorted(TRACE_PROFILES)}")
    profile = TRACE_PROFILES[name]
    if duration is not None:
        overrides["duration"] = duration
    if overrides:
        profile = replace(profile, **overrides)
    return profile


def load_preset(name: str, seed: int = 0, duration: float = None,
                **overrides) -> PacketTrace:
    """Generate a trace from one of the named presets."""
    return generate_trace(trace_profile(name, duration=duration, **overrides),
                          seed=seed)
