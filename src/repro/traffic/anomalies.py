"""Traffic anomaly injection.

The paper stresses the prediction and load shedding schemes with synthetic
anomalies injected into real traces (Sections 3.4.3, 4.5.5, 6.3.2):

* volume-based (D)DoS attacks — an overwhelming number of packets towards a
  single target;
* SYN-flood attacks with spoofed sources — a sudden explosion in the number
  of distinct 5-tuple flows while the packet count grows much less;
* worm outbreaks — many sources scanning many destinations on a fixed port;
* byte bursts — trains of maximum-size packets that stress byte-driven
  queries (trace, pattern-search);
* on/off attacks that go idle every other second to create a workload that
  is deliberately hard to predict (Figure 3.13-3.15).

Each injector returns a :class:`~repro.monitor.packet.PacketTrace` holding
only the anomaly packets; callers merge it into a baseline trace with
:func:`repro.traffic.generator.merge_traces`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..monitor.packet import PROTO_TCP, PROTO_UDP, Batch, PacketTrace, ip
from .generator import merge_traces


@dataclass
class AnomalyWindow:
    """Time window during which an anomaly is active."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


def _uniform_times(window: AnomalyWindow, count: int,
                   rng: np.random.Generator) -> np.ndarray:
    return np.sort(rng.uniform(window.start, window.end, size=count))


def _on_off_times(window: AnomalyWindow, count: int, period: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Draw times only during the 'on' half of each ``period`` seconds."""
    times = rng.uniform(window.start, window.end, size=count * 2)
    phase = np.mod(times - window.start, period)
    times = times[phase < period / 2.0][:count]
    return np.sort(times)


def ddos_attack(
    window: AnomalyWindow,
    packets_per_second: float = 20000.0,
    target: Optional[int] = None,
    target_port: int = 80,
    spoofed_sources: bool = True,
    on_off_period: Optional[float] = None,
    seed: int = 1,
    name: str = "ddos",
) -> PacketTrace:
    """Distributed denial-of-service flood towards a single target.

    With ``spoofed_sources`` the source addresses and ports are random per
    packet, so the attack inflates every flow-related traffic feature; this is
    the anomaly of Figures 3.13-3.15.  ``on_off_period`` makes the attack go
    idle every other half-period, producing the hard-to-predict on/off load.
    """
    rng = np.random.default_rng(seed)
    count = int(packets_per_second * window.duration)
    if on_off_period is not None:
        ts = _on_off_times(window, count, on_off_period, rng)
    else:
        ts = _uniform_times(window, count, rng)
    count = len(ts)
    if target is None:
        target = ip(147, 83, 30, 30)
    if spoofed_sources:
        src_ip = rng.integers(ip(1, 0, 0, 1), ip(223, 255, 255, 254),
                              size=count, dtype=np.int64).astype(np.uint32)
        src_port = rng.integers(1024, 65535, size=count).astype(np.uint16)
    else:
        sources = rng.integers(ip(60, 0, 0, 1), ip(90, 0, 0, 1), size=200,
                               dtype=np.int64).astype(np.uint32)
        src_ip = rng.choice(sources, size=count)
        src_port = rng.integers(1024, 65535, size=count).astype(np.uint16)
    packets = Batch(
        ts=ts,
        src_ip=src_ip,
        dst_ip=np.full(count, target, dtype=np.uint32),
        src_port=src_port,
        dst_port=np.full(count, target_port, dtype=np.uint16),
        proto=np.full(count, PROTO_TCP, dtype=np.uint8),
        size=np.full(count, 64, dtype=np.uint32),
    )
    return PacketTrace(packets, name=name)


def syn_flood(
    window: AnomalyWindow,
    packets_per_second: float = 15000.0,
    target: Optional[int] = None,
    target_port: int = 80,
    seed: int = 2,
    name: str = "syn-flood",
) -> PacketTrace:
    """SYN flood with spoofed sources: every packet is a new 40-byte flow."""
    return ddos_attack(
        window,
        packets_per_second=packets_per_second,
        target=target,
        target_port=target_port,
        spoofed_sources=True,
        seed=seed,
        name=name,
    )


def worm_outbreak(
    window: AnomalyWindow,
    packets_per_second: float = 8000.0,
    target_port: int = 445,
    n_infected: int = 300,
    seed: int = 3,
    name: str = "worm",
) -> PacketTrace:
    """Worm scanning: many sources probing many destinations on one port."""
    rng = np.random.default_rng(seed)
    count = int(packets_per_second * window.duration)
    ts = _uniform_times(window, count, rng)
    infected = rng.integers(ip(10, 0, 0, 1), ip(200, 0, 0, 1), size=n_infected,
                            dtype=np.int64).astype(np.uint32)
    src_ip = rng.choice(infected, size=count)
    dst_ip = rng.integers(ip(1, 0, 0, 1), ip(223, 255, 255, 254), size=count,
                          dtype=np.int64).astype(np.uint32)
    packets = Batch(
        ts=ts,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=rng.integers(1024, 65535, size=count).astype(np.uint16),
        dst_port=np.full(count, target_port, dtype=np.uint16),
        proto=np.full(count, PROTO_TCP, dtype=np.uint8),
        size=np.full(count, 92, dtype=np.uint32),
    )
    return PacketTrace(packets, name=name)


def byte_burst(
    window: AnomalyWindow,
    packets_per_second: float = 5000.0,
    packet_size: int = 1500,
    seed: int = 4,
    name: str = "byte-burst",
) -> PacketTrace:
    """Burst of maximum-size packets from a handful of hosts.

    Stresses queries whose cost is driven by the byte count (trace,
    pattern-search), as in the attack described at the end of Section 3.4.3.
    """
    rng = np.random.default_rng(seed)
    count = int(packets_per_second * window.duration)
    ts = _uniform_times(window, count, rng)
    sources = rng.integers(ip(30, 0, 0, 1), ip(40, 0, 0, 1), size=10,
                           dtype=np.int64).astype(np.uint32)
    dests = rng.integers(ip(147, 83, 0, 1), ip(147, 83, 255, 254), size=10,
                         dtype=np.int64).astype(np.uint32)
    payloads = None
    packets = Batch(
        ts=ts,
        src_ip=rng.choice(sources, size=count),
        dst_ip=rng.choice(dests, size=count),
        src_port=rng.integers(1024, 65535, size=count).astype(np.uint16),
        dst_port=np.full(count, 80, dtype=np.uint16),
        proto=np.full(count, PROTO_UDP, dtype=np.uint8),
        size=np.full(count, packet_size, dtype=np.uint32),
        payloads=payloads,
    )
    return PacketTrace(packets, name=name)


def flash_crowd(
    window: AnomalyWindow,
    packets_per_second: float = 9000.0,
    target: Optional[int] = None,
    target_port: int = 80,
    n_clients: int = 1500,
    seed: int = 6,
    name: str = "flash-crowd",
) -> PacketTrace:
    """Legitimate flash crowd: many real clients hammering one server.

    Unlike a spoofed DDoS, the source pool is finite (every client sends many
    packets over a few ports) and the packets carry realistic request/response
    sizes, so packet- and byte-driven features surge while the number of
    distinct flows grows far less than in a SYN flood.
    """
    rng = np.random.default_rng(seed)
    count = int(packets_per_second * window.duration)
    ts = _uniform_times(window, count, rng)
    if target is None:
        target = ip(147, 83, 20, 20)
    clients = rng.integers(ip(1, 0, 0, 1), ip(223, 255, 255, 254),
                           size=n_clients, dtype=np.int64).astype(np.uint32)
    client_ports = rng.integers(1024, 65535, size=n_clients).astype(np.uint16)
    idx = rng.integers(0, n_clients, size=count)
    sizes = rng.choice([60, 120, 576, 1200, 1500], size=count,
                       p=[0.3, 0.2, 0.2, 0.15, 0.15]).astype(np.uint32)
    packets = Batch(
        ts=ts,
        src_ip=clients[idx],
        dst_ip=np.full(count, target, dtype=np.uint32),
        src_port=client_ports[idx],
        dst_port=np.full(count, target_port, dtype=np.uint16),
        proto=np.full(count, PROTO_TCP, dtype=np.uint8),
        size=sizes,
    )
    return PacketTrace(packets, name=name)


def port_scan(
    window: AnomalyWindow,
    probes_per_second: float = 7000.0,
    n_scanners: int = 4,
    target_network: Optional[int] = None,
    n_targets: int = 4096,
    seed: int = 7,
    name: str = "port-scan",
) -> PacketTrace:
    """Port-scan storm: a handful of scanners sweeping ports across a subnet.

    The storm explodes destination-side aggregates (``dst_port_proto``,
    ``dst_ip_port_proto``) while source-side aggregates stay almost flat —
    the mirror image of a spoofed flood, which stresses the feature-selection
    stage differently.
    """
    rng = np.random.default_rng(seed)
    count = int(probes_per_second * window.duration)
    ts = _uniform_times(window, count, rng)
    if target_network is None:
        target_network = ip(147, 83, 0, 0)
    scanners = rng.integers(ip(20, 0, 0, 1), ip(220, 0, 0, 1), size=n_scanners,
                            dtype=np.int64).astype(np.uint32)
    targets = (np.uint32(target_network) +
               rng.integers(0, n_targets, size=count).astype(np.uint32))
    packets = Batch(
        ts=ts,
        src_ip=rng.choice(scanners, size=count),
        dst_ip=targets,
        src_port=rng.integers(40000, 65535, size=count).astype(np.uint16),
        dst_port=rng.integers(1, 10000, size=count).astype(np.uint16),
        proto=np.full(count, PROTO_TCP, dtype=np.uint8),
        size=np.full(count, 40, dtype=np.uint32),
    )
    return PacketTrace(packets, name=name)


def flow_spike(
    window: AnomalyWindow,
    flows_per_second: float = 5000.0,
    packets_per_flow: int = 2,
    dst_port: int = 80,
    seed: int = 5,
    name: str = "flow-spike",
) -> PacketTrace:
    """A spike in the number of distinct flows with modest packet volume.

    This is the "unknown query" anomaly of Figure 3.1: packet and byte counts
    stay roughly flat while the number of 5-tuple flows explodes, so only a
    flow-aware feature explains the extra CPU usage.
    """
    rng = np.random.default_rng(seed)
    n_flows = int(flows_per_second * window.duration)
    count = n_flows * packets_per_flow
    ts = _uniform_times(window, count, rng)
    flow_src = rng.integers(ip(1, 0, 0, 1), ip(223, 255, 255, 254),
                            size=n_flows, dtype=np.int64).astype(np.uint32)
    flow_sport = rng.integers(1024, 65535, size=n_flows).astype(np.uint16)
    idx = np.repeat(np.arange(n_flows), packets_per_flow)[:count]
    packets = Batch(
        ts=ts,
        src_ip=flow_src[idx],
        dst_ip=np.full(count, ip(147, 83, 40, 40), dtype=np.uint32),
        src_port=flow_sport[idx],
        dst_port=np.full(count, dst_port, dtype=np.uint16),
        proto=np.full(count, PROTO_TCP, dtype=np.uint8),
        size=np.full(count, 60, dtype=np.uint32),
    )
    return PacketTrace(packets, name=name)


def inject(base: PacketTrace, *anomalies: PacketTrace,
           name: Optional[str] = None) -> PacketTrace:
    """Merge anomaly traces into a baseline trace, preserving time order.

    Payloads are dropped if the baseline carries payloads but the anomaly
    traces do not (header-only attack packets), matching how a header-only
    flood would appear to payload-based queries as empty payloads.
    """
    if base.packets.payloads is not None:
        # Give anomaly packets empty payloads so the merged trace stays
        # payload-complete.
        patched = []
        for anomaly in anomalies:
            pkts = anomaly.packets
            if pkts.payloads is None and len(pkts) > 0:
                pkts = Batch(
                    ts=pkts.ts, src_ip=pkts.src_ip, dst_ip=pkts.dst_ip,
                    src_port=pkts.src_port, dst_port=pkts.dst_port,
                    proto=pkts.proto, size=pkts.size,
                    payloads=[b""] * len(pkts),
                    time_bin=pkts.time_bin, start_ts=pkts.start_ts,
                )
            patched.append(PacketTrace(pkts, name=anomaly.name))
        anomalies = tuple(patched)
    merged_name = name if name is not None else f"{base.name}+anomalies"
    return merge_traces(base, *anomalies, name=merged_name)
