"""Synthetic traffic generation.

The paper evaluates on real Gigabit-link traces (CESCA, UPC, ABILENE, CENIC)
which are not redistributable; this module generates synthetic traces with
the statistical structure the load shedding scheme actually reacts to:

* flow arrivals with a bursty, time-varying rate;
* heavy-tailed flow sizes (a few elephants, many mice);
* a port-based application mix (web, DNS, P2P, mail, ...);
* Zipf-like popularity of hosts, so that top-k / autofocus style queries see
  realistic skew;
* optional packet payloads with a configurable density of signature strings
  (for pattern-search and p2p-detector queries).

All generation is vectorised with NumPy and fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..monitor.packet import PROTO_TCP, PROTO_UDP, Batch, PacketTrace, ip

#: Signature strings that the p2p-detector and pattern-search queries look
#: for.  They are injected into generated payloads with configurable
#: probability.
P2P_SIGNATURES: Tuple[bytes, ...] = (
    b"BitTorrent protocol",
    b"GNUTELLA CONNECT",
    b"X-Kazaa-Username",
)
ATTACK_SIGNATURE: bytes = b"\x90\x90\x90\x90EVILPAYLOAD"


@dataclass
class ApplicationProfile:
    """One application class in the traffic mix."""

    name: str
    dst_port: int
    weight: float
    proto: int = PROTO_TCP
    mean_packets_per_flow: float = 12.0
    mean_packet_size: float = 700.0
    p2p: bool = False


#: Default application mix, loosely modelled on an academic access link.
DEFAULT_APPLICATIONS: Tuple[ApplicationProfile, ...] = (
    ApplicationProfile("http", 80, 0.42, PROTO_TCP, 14.0, 820.0),
    ApplicationProfile("https", 443, 0.18, PROTO_TCP, 12.0, 780.0),
    ApplicationProfile("dns", 53, 0.12, PROTO_UDP, 2.0, 90.0),
    ApplicationProfile("smtp", 25, 0.06, PROTO_TCP, 10.0, 560.0),
    ApplicationProfile("ssh", 22, 0.05, PROTO_TCP, 20.0, 220.0),
    ApplicationProfile("p2p-bt", 6881, 0.10, PROTO_TCP, 30.0, 1050.0, p2p=True),
    ApplicationProfile("p2p-gnutella", 6346, 0.04, PROTO_TCP, 22.0, 900.0, p2p=True),
    ApplicationProfile("other", 8080, 0.03, PROTO_TCP, 8.0, 500.0),
)


@dataclass
class TrafficProfile:
    """Parameters controlling synthetic trace generation."""

    duration: float = 30.0                  # seconds of traffic
    flow_arrival_rate: float = 250.0        # mean new flows per second
    burstiness: float = 0.35                # amplitude of rate modulation [0, 1)
    burst_period: float = 7.0               # seconds per modulation cycle
    rate_noise: float = 0.15                # multiplicative per-bin rate noise
    pareto_shape: float = 1.4               # heavy tail of flow sizes
    max_packets_per_flow: int = 2000
    mean_flow_duration: float = 2.0         # seconds
    n_external_hosts: int = 4000
    n_local_hosts: int = 600
    zipf_exponent: float = 1.1              # host popularity skew
    local_network: Tuple[int, int, int, int] = (147, 83, 0, 0)
    applications: Tuple[ApplicationProfile, ...] = DEFAULT_APPLICATIONS
    with_payloads: bool = False
    mean_payload_bytes: int = 160
    max_payload_bytes: int = 512
    signature_probability: float = 0.002    # pattern-search hit density
    name: str = "synthetic"


def _zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _host_pools(profile: TrafficProfile,
                rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the external and local host address pools."""
    external = rng.integers(ip(1, 0, 0, 1), ip(223, 255, 255, 254),
                            size=profile.n_external_hosts, dtype=np.int64)
    a, b, _, _ = profile.local_network
    base = ip(a, b, 0, 0)
    local = base + rng.integers(1, 255 * 255, size=profile.n_local_hosts,
                                dtype=np.int64)
    return external.astype(np.uint32), local.astype(np.uint32)


def _flow_arrivals(profile: TrafficProfile,
                   rng: np.random.Generator) -> np.ndarray:
    """Draw flow start times with a bursty, modulated arrival rate.

    The modulation combines a slow sinusoid (the load oscillation of a real
    link) with a log-normal noise process that changes once per second, so
    consecutive 100 ms bins see similar rates but the trace still exhibits
    second-scale burstiness.
    """
    bin_len = 0.1
    n_bins = max(1, int(round(profile.duration / bin_len)))
    t = (np.arange(n_bins) + 0.5) * bin_len
    modulation = 1.0 + profile.burstiness * np.sin(
        2.0 * np.pi * t / profile.burst_period)
    n_seconds = n_bins // 10 + 1
    per_second_noise = np.exp(rng.normal(0.0, profile.rate_noise,
                                         size=n_seconds))
    noise = np.repeat(per_second_noise, 10)[:n_bins]
    rate_per_bin = profile.flow_arrival_rate * bin_len * modulation * noise
    counts = rng.poisson(np.maximum(rate_per_bin, 0.0))
    starts = np.repeat(np.arange(n_bins) * bin_len, counts)
    starts = starts + rng.uniform(0.0, bin_len, size=len(starts))
    return np.sort(starts)


def _flow_sizes(n_flows: int, app_index: np.ndarray,
                profile: TrafficProfile,
                rng: np.random.Generator) -> np.ndarray:
    """Heavy-tailed number of packets per flow, scaled by application."""
    apps = profile.applications
    means = np.array([a.mean_packets_per_flow for a in apps])[app_index]
    # Pareto with unit scale has mean shape/(shape-1); rescale to per-app mean.
    shape = profile.pareto_shape
    raw = rng.pareto(shape, size=n_flows) + 1.0
    raw_mean = shape / (shape - 1.0) if shape > 1.0 else 3.0
    sizes = np.maximum(1, np.round(raw * means / raw_mean)).astype(np.int64)
    return np.minimum(sizes, profile.max_packets_per_flow)


def _make_payloads(sizes: np.ndarray, dst_ports: np.ndarray,
                   within_flow_index: np.ndarray,
                   profile: TrafficProfile,
                   rng: np.random.Generator) -> List[bytes]:
    """Generate per-packet payloads with occasional embedded signatures.

    The first two packets of every P2P flow carry a protocol handshake
    signature (the exchange signature-based detectors key on); this is what
    makes the P2P detector fragile under packet sampling — losing either
    handshake packet makes the flow undetectable — while flow-wise shedding
    keeps surviving flows fully classifiable (Chapter 6).
    """
    p2p_ports = {a.dst_port for a in profile.applications if a.p2p}
    payload_lens = np.minimum(
        rng.geometric(1.0 / max(profile.mean_payload_bytes, 1), size=len(sizes)),
        profile.max_payload_bytes,
    )
    payload_lens = np.minimum(payload_lens, np.maximum(sizes, 1))
    signature_hits = rng.random(len(sizes)) < profile.signature_probability
    p2p_mask = np.isin(dst_ports, list(p2p_ports)) if p2p_ports else np.zeros(
        len(sizes), dtype=bool)
    p2p_hits = p2p_mask & (within_flow_index < 2)
    # Make room for the signature so short handshake payloads still carry it.
    min_sig_len = max(len(sig) for sig in P2P_SIGNATURES) + 4
    payload_lens = np.where(p2p_hits,
                            np.maximum(payload_lens, min_sig_len), payload_lens)
    blob = rng.integers(32, 127, size=int(payload_lens.sum()),
                        dtype=np.uint8).tobytes()
    payloads: List[bytes] = []
    offset = 0
    sig_cycle = 0
    for i, length in enumerate(payload_lens):
        length = int(length)
        body = blob[offset:offset + length]
        offset += length
        if p2p_hits[i]:
            sig = P2P_SIGNATURES[sig_cycle % len(P2P_SIGNATURES)]
            sig_cycle += 1
            body = sig + body[len(sig):]
        elif signature_hits[i]:
            body = ATTACK_SIGNATURE + body[len(ATTACK_SIGNATURE):]
        payloads.append(body)
    return payloads


def generate_trace(profile: Optional[TrafficProfile] = None,
                   seed: int = 0) -> PacketTrace:
    """Generate a synthetic :class:`~repro.monitor.packet.PacketTrace`.

    Parameters
    ----------
    profile:
        Generation parameters; defaults to :class:`TrafficProfile`.
    seed:
        Seed for the NumPy random generator; identical seeds produce
        identical traces.
    """
    profile = profile if profile is not None else TrafficProfile()
    rng = np.random.default_rng(seed)
    external, local = _host_pools(profile, rng)
    ext_probs = _zipf_probabilities(len(external), profile.zipf_exponent)
    loc_probs = _zipf_probabilities(len(local), profile.zipf_exponent)

    starts = _flow_arrivals(profile, rng)
    n_flows = len(starts)
    if n_flows == 0:
        return PacketTrace(Batch.empty(with_payloads=profile.with_payloads),
                           name=profile.name)

    apps = profile.applications
    app_weights = np.array([a.weight for a in apps], dtype=np.float64)
    app_weights = app_weights / app_weights.sum()
    app_index = rng.choice(len(apps), size=n_flows, p=app_weights)

    # Per-flow attributes --------------------------------------------------
    flow_src = rng.choice(external, size=n_flows, p=ext_probs)
    flow_dst = rng.choice(local, size=n_flows, p=loc_probs)
    flow_dst_port = np.array([apps[i].dst_port for i in app_index],
                             dtype=np.uint16)
    flow_proto = np.array([apps[i].proto for i in app_index], dtype=np.uint8)
    flow_src_port = rng.integers(1024, 65535, size=n_flows).astype(np.uint16)
    flow_pkts = _flow_sizes(n_flows, app_index, profile, rng)
    flow_mean_size = np.array([apps[i].mean_packet_size for i in app_index])

    # Expand flows to packets ----------------------------------------------
    total_pkts = int(flow_pkts.sum())
    pkt_flow = np.repeat(np.arange(n_flows), flow_pkts)
    # Inter-packet gaps: exponential with per-flow mean so that the flow
    # roughly spans ``mean_flow_duration`` seconds.
    gap_mean = profile.mean_flow_duration / np.maximum(flow_pkts, 1)
    gaps = rng.exponential(1.0, size=total_pkts) * gap_mean[pkt_flow]
    # First packet of each flow starts exactly at the flow start time.
    first_of_flow = np.zeros(total_pkts, dtype=bool)
    first_of_flow[np.cumsum(flow_pkts)[:-1]] = True
    first_of_flow[0] = True
    gaps[first_of_flow] = 0.0
    # Cumulative sum of gaps within each flow.
    cum = np.cumsum(gaps)
    flow_offsets = np.concatenate(([0.0], cum[np.cumsum(flow_pkts)[:-1] - 1]))
    within_flow = cum - flow_offsets[pkt_flow]
    ts = starts[pkt_flow] + within_flow
    # Index of each packet within its flow (0 for the first packet).
    flow_first_index = np.concatenate(([0], np.cumsum(flow_pkts)[:-1]))
    within_flow_index = np.arange(total_pkts) - flow_first_index[pkt_flow]

    sizes = rng.normal(flow_mean_size[pkt_flow],
                       flow_mean_size[pkt_flow] * 0.35)
    sizes = np.clip(sizes, 40, 1514).astype(np.uint32)

    # Trim the drain-out tail: flows started near the end of the trace would
    # otherwise trickle packets for several extra seconds of near-empty bins,
    # which no real fixed-length capture would contain.
    keep = ts <= profile.duration
    ts, pkt_flow, sizes = ts[keep], pkt_flow[keep], sizes[keep]
    within_flow_index = within_flow_index[keep]
    if len(ts) == 0:
        return PacketTrace(Batch.empty(with_payloads=profile.with_payloads),
                           name=profile.name)

    order = np.argsort(ts, kind="stable")
    ts = ts[order]
    pkt_flow = pkt_flow[order]
    sizes = sizes[order]
    within_flow_index = within_flow_index[order]

    payloads = None
    if profile.with_payloads:
        payloads = _make_payloads(sizes, flow_dst_port[pkt_flow],
                                  within_flow_index, profile, rng)

    packets = Batch(
        ts=ts,
        src_ip=flow_src[pkt_flow],
        dst_ip=flow_dst[pkt_flow],
        src_port=flow_src_port[pkt_flow],
        dst_port=flow_dst_port[pkt_flow],
        proto=flow_proto[pkt_flow],
        size=sizes,
        payloads=payloads,
    )
    return PacketTrace(packets, name=profile.name)


def generate_trace_store(path: Union[str, Path],
                         profile: Optional[TrafficProfile] = None,
                         seed: int = 0,
                         segment_duration: float = 10.0,
                         time_bin: float = 0.1):
    """Synthesise a v2 trace store segment by segment, bounded in memory.

    :func:`generate_trace` materialises the whole trace, which caps the
    workloads it can produce at the host's RAM.  This driver generates the
    ``profile``'s duration in independent ``segment_duration``-second
    segments — each drawn from its own deterministic per-segment RNG
    stream, time-shifted to its position and appended to a
    :class:`~repro.traffic.trace_io.TraceWriter` — so only one segment is
    ever in memory and a store of any size can be written.

    The packet stream is *not* sample-identical to
    ``generate_trace(profile, seed)`` (flows do not span segment
    boundaries and each segment consumes its own RNG stream); it is the
    same traffic model at unbounded scale, and identical inputs always
    regenerate an identical store.

    Returns the finished :class:`~repro.traffic.trace_io.TraceStore`.
    """
    from .trace_io import TraceWriter

    profile = profile if profile is not None else TrafficProfile()
    segment_duration = float(segment_duration)
    if segment_duration <= 0:
        raise ValueError("segment_duration must be positive")
    writer = TraceWriter(path, name=profile.name,
                         with_payloads=profile.with_payloads,
                         time_bin=time_bin)
    offset = 0.0
    index = 0
    while offset < profile.duration:
        seg_len = min(segment_duration, profile.duration - offset)
        seg_profile = replace(profile, duration=seg_len)
        seg_seed = int(np.random.SeedSequence([int(seed), index])
                       .generate_state(1)[0])
        segment = generate_trace(seg_profile, seed=seg_seed)
        if len(segment) > 0:
            pkts = segment.packets
            writer.append(Batch(
                ts=pkts.ts + offset,
                src_ip=pkts.src_ip,
                dst_ip=pkts.dst_ip,
                src_port=pkts.src_port,
                dst_port=pkts.dst_port,
                proto=pkts.proto,
                size=pkts.size,
                payloads=pkts.payloads,
            ))
        offset += segment_duration
        index += 1
    return writer.close()


def merge_traces(*traces: PacketTrace, name: str = "merged") -> PacketTrace:
    """Merge traces by interleaving their packets in timestamp order."""
    non_empty = [t for t in traces if len(t) > 0]
    if not non_empty:
        return PacketTrace(Batch.empty(), name=name)
    combined = Batch.concatenate([t.packets for t in non_empty])
    order = np.argsort(combined.ts, kind="stable")
    merged = combined.select(order)
    return PacketTrace(merged, name=name)
