"""Synthetic traffic substrate: generation, anomalies, presets and trace I/O."""

from .anomalies import (AnomalyWindow, byte_burst, ddos_attack, flash_crowd,
                        flow_spike, inject, port_scan, syn_flood,
                        worm_outbreak)
from .generator import (ATTACK_SIGNATURE, P2P_SIGNATURES, ApplicationProfile,
                        TrafficProfile, generate_trace, generate_trace_store,
                        merge_traces)
from .models import TRACE_PROFILES, load_preset, trace_profile
from .trace_io import (TraceStore, TraceWriter, load_trace, open_trace,
                       save_trace, save_trace_store)

__all__ = [
    "ATTACK_SIGNATURE",
    "AnomalyWindow",
    "ApplicationProfile",
    "P2P_SIGNATURES",
    "TRACE_PROFILES",
    "TraceStore",
    "TraceWriter",
    "TrafficProfile",
    "byte_burst",
    "ddos_attack",
    "flash_crowd",
    "flow_spike",
    "generate_trace",
    "generate_trace_store",
    "inject",
    "load_preset",
    "load_trace",
    "merge_traces",
    "open_trace",
    "port_scan",
    "save_trace",
    "save_trace_store",
    "syn_flood",
    "trace_profile",
    "worm_outbreak",
]
