"""Saving and loading packet traces.

Traces are stored as NumPy ``.npz`` archives holding the column arrays plus
optional payloads.  This gives reproducible, self-contained trace files that
examples and long experiments can reuse without regenerating traffic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..monitor.packet import Batch, PacketTrace

_FORMAT_VERSION = 1


def save_trace(trace: PacketTrace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` (an ``.npz`` archive).  Returns the path."""
    path = Path(path)
    pkts = trace.packets
    payload = {}
    if pkts.payloads is not None:
        lengths = np.array([len(p) for p in pkts.payloads], dtype=np.int64)
        blob = b"".join(pkts.payloads)
        payload = {
            "payload_lengths": lengths,
            "payload_blob": np.frombuffer(blob, dtype=np.uint8),
        }
    meta = json.dumps({"name": trace.name, "version": _FORMAT_VERSION})
    np.savez_compressed(
        path,
        ts=pkts.ts,
        src_ip=pkts.src_ip,
        dst_ip=pkts.dst_ip,
        src_port=pkts.src_port,
        dst_port=pkts.dst_port,
        proto=pkts.proto,
        size=pkts.size,
        meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
        **payload,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace(path: Union[str, Path]) -> PacketTrace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        payloads: Optional[list] = None
        if "payload_lengths" in data:
            lengths = data["payload_lengths"]
            blob = bytes(data["payload_blob"])
            payloads = []
            offset = 0
            for length in lengths:
                payloads.append(blob[offset:offset + int(length)])
                offset += int(length)
        packets = Batch(
            ts=data["ts"],
            src_ip=data["src_ip"],
            dst_ip=data["dst_ip"],
            src_port=data["src_port"],
            dst_port=data["dst_port"],
            proto=data["proto"],
            size=data["size"],
            payloads=payloads,
        )
    return PacketTrace(packets, name=meta.get("name", path.stem))
