"""Saving and loading packet traces.

Two on-disk formats are supported:

**v1** — a NumPy ``.npz`` archive holding the column arrays plus optional
payloads.  Self-contained single-file traces; loading materialises every
column in memory.  :func:`save_trace` / :func:`load_trace` read and write
this format exactly as they always have.

**v2** — a *trace store*: a directory with one raw ``.npy`` file per column
plus a JSON manifest carrying a bin index.  Columns are written append-mode
by :class:`TraceWriter` (so multi-GB workloads can be synthesised
chunk-at-a-time without ever holding the trace in memory) and are opened
lazily as memory maps (``np.lib.format.open_memmap``), so a store far larger
than RAM replays chunk by chunk through
:class:`~repro.monitor.packet.StreamingTrace` with bounded resident memory.

:func:`open_trace` dispatches on the path: a store directory opens as a
:class:`TraceStore`, anything else loads as a v1 archive.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..monitor.packet import Batch, PacketTrace, StreamingTrace

_FORMAT_VERSION = 1

#: Version tag of the v2 trace-store format.
STORE_VERSION = 2

#: Manifest file name marking a directory as a v2 trace store.
MANIFEST_NAME = "manifest.json"

#: Canonical column order and on-disk dtypes of a v2 store.  These mirror
#: the dtypes :class:`~repro.monitor.packet.Batch` coerces to, so a stored
#: column round-trips bit for bit.
STORE_COLUMNS = (
    ("ts", np.float64),
    ("src_ip", np.uint32),
    ("dst_ip", np.uint32),
    ("src_port", np.uint16),
    ("dst_port", np.uint16),
    ("proto", np.uint8),
    ("size", np.uint32),
)


# ----------------------------------------------------------------------
# v1: .npz archives
# ----------------------------------------------------------------------
def _written_npz_path(path: Path) -> Path:
    """The path ``np.savez_compressed`` actually writes.

    NumPy appends ``.npz`` unless the file name already ends with it, so a
    path like ``trace.dat`` is written as ``trace.dat.npz`` — the returned
    path must say so or the caller cannot find its own file.
    """
    if str(path).endswith(".npz"):
        return path
    return path.with_name(path.name + ".npz")


def save_trace(trace: PacketTrace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` (an ``.npz`` archive).

    Returns the path of the file actually written (NumPy appends ``.npz``
    when the given name does not already end with it).
    """
    path = Path(path)
    pkts = trace.packets
    payload = {}
    if pkts.payloads is not None:
        lengths = np.array([len(p) for p in pkts.payloads], dtype=np.int64)
        blob = b"".join(pkts.payloads)
        payload = {
            "payload_lengths": lengths,
            "payload_blob": np.frombuffer(blob, dtype=np.uint8),
        }
    meta = json.dumps({"name": trace.name, "version": _FORMAT_VERSION})
    np.savez_compressed(
        path,
        ts=pkts.ts,
        src_ip=pkts.src_ip,
        dst_ip=pkts.dst_ip,
        src_port=pkts.src_port,
        dst_port=pkts.dst_port,
        proto=pkts.proto,
        size=pkts.size,
        meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
        **payload,
    )
    return _written_npz_path(path)


def load_trace(path: Union[str, Path]) -> PacketTrace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        payloads: Optional[list] = None
        if "payload_lengths" in data:
            lengths = data["payload_lengths"]
            blob = bytes(data["payload_blob"])
            payloads = []
            offset = 0
            for length in lengths:
                payloads.append(blob[offset:offset + int(length)])
                offset += int(length)
        packets = Batch(
            ts=data["ts"],
            src_ip=data["src_ip"],
            dst_ip=data["dst_ip"],
            src_port=data["src_port"],
            dst_port=data["dst_port"],
            proto=data["proto"],
            size=data["size"],
            payloads=payloads,
        )
    return PacketTrace(packets, name=meta.get("name", path.stem))


# ----------------------------------------------------------------------
# v2: append-mode column files
# ----------------------------------------------------------------------
#: Reserved byte length of the ``.npy`` header block.  The header is
#: written twice — once with a zero shape when the file is opened, and
#: again with the final count on close — so it must occupy a fixed block.
_NPY_HEADER_LEN = 128


def _npy_header(dtype: np.dtype, count: int) -> bytes:
    """A fixed-length version-1.0 ``.npy`` header for a 1-D array."""
    descr = np.lib.format.dtype_to_descr(np.dtype(dtype))
    head = ("{'descr': %r, 'fortran_order': False, 'shape': (%d,), }"
            % (descr, count)).encode("latin1")
    magic = b"\x93NUMPY\x01\x00"
    length = _NPY_HEADER_LEN - len(magic) - 2
    pad = length - len(head) - 1
    if pad < 0:
        raise ValueError("npy header does not fit its reserved block")
    return magic + struct.pack("<H", length) + head + b" " * pad + b"\n"


class _ColumnWriter:
    """Append raw values to one ``.npy`` column file.

    The header is patched with the final element count on :meth:`close`;
    until then the file carries a zero shape, so a crashed write never
    looks like a complete column.
    """

    def __init__(self, path: Path, dtype) -> None:
        self.path = path
        self.dtype = np.dtype(dtype)
        self.count = 0
        self._fh = open(path, "wb")
        self._fh.write(_npy_header(self.dtype, 0))

    def append(self, values) -> None:
        arr = np.ascontiguousarray(values, dtype=self.dtype)
        arr.tofile(self._fh)
        self.count += len(arr)

    def flush(self) -> None:
        """Publish the rows appended so far without closing the file.

        The header is patched with the current count (so a reader opening
        the file now sees a complete array of everything flushed) and the
        write position restored, ready for further appends.
        """
        position = self._fh.tell()
        self._fh.seek(0)
        self._fh.write(_npy_header(self.dtype, self.count))
        self._fh.seek(position)
        self._fh.flush()

    def close(self) -> None:
        self._fh.seek(0)
        self._fh.write(_npy_header(self.dtype, self.count))
        self._fh.close()


class TraceWriter:
    """Append-mode writer of v2 trace stores.

    Chunks (``Batch`` objects or whole ``PacketTrace`` segments) are
    appended in chronological order; only the current chunk is ever held in
    memory, so arbitrarily large workloads can be synthesised piecewise
    (see :func:`repro.traffic.generator.generate_trace_store`).  The writer
    maintains the manifest's bin index incrementally — the packet offset of
    every ``time_bin`` boundary — so replay never has to scan the timestamp
    column to find its bins.

    Use as a context manager or call :meth:`close` explicitly; the manifest
    is only written on close, so an interrupted write never yields a
    readable (half) store.
    """

    def __init__(self, path: Union[str, Path], name: Optional[str] = None,
                 with_payloads: bool = False, time_bin: float = 0.1) -> None:
        self.path = Path(path)
        if self.path.exists() and (self.path / MANIFEST_NAME).exists():
            raise FileExistsError(
                f"{self.path} already contains a trace store; writing into "
                "an existing store is not supported")
        self.path.mkdir(parents=True, exist_ok=True)
        self.name = name if name is not None else self.path.name
        self.with_payloads = bool(with_payloads)
        self.time_bin = float(time_bin)
        if self.time_bin <= 0:
            raise ValueError("time_bin must be positive")
        self._columns = {
            column: _ColumnWriter(self.path / f"{column}.npy", dtype)
            for column, dtype in STORE_COLUMNS
        }
        self._payload_writers = {}
        if self.with_payloads:
            self._payload_writers = {
                "payload_lengths": _ColumnWriter(
                    self.path / "payload_lengths.npy", np.int64),
                "payload_offsets": _ColumnWriter(
                    self.path / "payload_offsets.npy", np.int64),
                "payload_blob": _ColumnWriter(
                    self.path / "payload_blob.npy", np.uint8),
            }
            self._payload_writers["payload_offsets"].append([0])
        self._payload_bytes = 0
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None
        #: Packet offset of every finalised bin edge (edge ``i`` sits at
        #: ``first_ts + i * time_bin``); extended as chunks arrive.
        self._bounds: List[int] = []
        self._store: Optional["TraceStore"] = None

    @property
    def num_packets(self) -> int:
        return self._columns["ts"].count

    def append(self, packets: Union[Batch, PacketTrace]) -> None:
        """Append one chronological chunk of packets to the store."""
        if self._store is not None:
            raise RuntimeError("cannot append to a closed TraceWriter")
        if isinstance(packets, PacketTrace):
            packets = packets.packets
        n = len(packets)
        if n == 0:
            return
        if packets.has_payloads != self.with_payloads:
            raise ValueError(
                f"chunk {'carries' if packets.has_payloads else 'lacks'} "
                f"payloads but the store was opened with "
                f"with_payloads={self.with_payloads}")
        ts = np.asarray(packets.ts, dtype=np.float64)
        if n > 1 and np.any(np.diff(ts) < 0):
            raise ValueError("timestamps within a chunk must be sorted")
        if self._last_ts is not None and float(ts[0]) < self._last_ts:
            raise ValueError(
                f"chunks must be appended chronologically: chunk starts at "
                f"{float(ts[0]):.6f} but the store already ends at "
                f"{self._last_ts:.6f}")
        base = self.num_packets
        for column, _ in STORE_COLUMNS:
            self._columns[column].append(getattr(packets, column))
        if self.with_payloads:
            lengths = np.array([len(p) for p in packets.payloads],
                               dtype=np.int64)
            offsets = self._payload_bytes + np.cumsum(lengths)
            self._payload_writers["payload_lengths"].append(lengths)
            self._payload_writers["payload_offsets"].append(offsets)
            self._payload_writers["payload_blob"].append(
                np.frombuffer(b"".join(packets.payloads), dtype=np.uint8))
            self._payload_bytes = int(offsets[-1]) if len(offsets) else \
                self._payload_bytes
        if self._first_ts is None:
            self._first_ts = float(ts[0])
            self._bounds = [0]
        self._last_ts = float(ts[-1])
        self._extend_bin_index(ts, base)

    def _extend_bin_index(self, ts: np.ndarray, base: int) -> None:
        """Finalise the offsets of every bin edge the data now covers.

        An edge is final once a packet at or past its timestamp has been
        seen; because chunks arrive chronologically, that first packet is
        always inside the current chunk, so one ``searchsorted`` over the
        chunk pins the edge exactly where a whole-column ``searchsorted``
        would.  The edge timestamps replicate the arithmetic of
        ``PacketTrace.batch_list`` (``start + time_bin * i`` in float64) so
        stored bounds are bit-compatible with the in-memory slicing.
        """
        first_edge = len(self._bounds)
        last_edge = int(np.floor((self._last_ts - self._first_ts) /
                                 self.time_bin)) + 1
        if last_edge < first_edge:
            return
        edges = self._first_ts + self.time_bin * np.arange(first_edge,
                                                           last_edge + 1)
        edges = edges[edges <= self._last_ts]
        if len(edges) == 0:
            return
        bounds = base + np.searchsorted(ts, edges)
        self._bounds.extend(int(bound) for bound in bounds)

    def _manifest(self, complete: bool) -> dict:
        count = self.num_packets
        bin_index = None
        if count > 0:
            n_bins = int(np.floor((self._last_ts - self._first_ts) /
                                  self.time_bin)) + 1
            bounds = self._bounds[:n_bins + 1]
            while len(bounds) < n_bins + 1:
                bounds.append(count)
            bin_index = {"time_bin": self.time_bin, "bounds": bounds}
        return {
            "format": "repro-trace-store",
            "version": STORE_VERSION,
            "name": self.name,
            "num_packets": count,
            "columns": {column: np.lib.format.dtype_to_descr(np.dtype(dtype))
                        for column, dtype in STORE_COLUMNS},
            "has_payloads": self.with_payloads,
            "payload_bytes": self._payload_bytes,
            "start_ts": self._first_ts,
            "end_ts": self._last_ts,
            "bin_index": bin_index,
            "complete": bool(complete),
        }

    def _write_manifest(self, manifest: dict) -> None:
        """Atomic manifest publication: readers see old or new, never half."""
        manifest_path = self.path / MANIFEST_NAME
        tmp_path = self.path / (MANIFEST_NAME + ".tmp")
        tmp_path.write_text(json.dumps(manifest, indent=1))
        tmp_path.replace(manifest_path)

    def flush(self) -> None:
        """Publish everything appended so far while keeping the store open.

        Column headers are patched with the current counts and a manifest
        marked ``"complete": false`` is written atomically, so a concurrent
        reader (e.g. :class:`repro.serve.feeds.TailFeed`) can open the
        growing store and replay the bins written so far; appends continue
        afterwards.  :meth:`close` publishes the final manifest with
        ``"complete": true``.
        """
        if self._store is not None:
            raise RuntimeError("cannot flush a closed TraceWriter")
        if self.num_packets == 0:
            return
        for writer in self._columns.values():
            writer.flush()
        for writer in self._payload_writers.values():
            writer.flush()
        self._write_manifest(self._manifest(complete=False))

    def close(self) -> "TraceStore":
        """Finalise headers, write the manifest and open the store."""
        if self._store is not None:
            return self._store
        for writer in self._columns.values():
            writer.close()
        for writer in self._payload_writers.values():
            writer.close()
        self._write_manifest(self._manifest(complete=True))
        self._store = TraceStore(self.path)
        return self._store

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is None:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceWriter(path={str(self.path)!r}, "
                f"packets={self.num_packets})")


class TraceStore:
    """A v2 trace store: lazily memory-mapped columnar trace on disk.

    Columns open on first access with ``np.lib.format.open_memmap`` in
    read-only mode, so constructing a store (and slicing its columns) never
    loads the trace into memory.  :meth:`streaming` wraps the store in a
    :class:`~repro.monitor.packet.StreamingTrace` that yields per-bin
    batches chunk by chunk; :meth:`to_trace` fully materialises it (only
    sensible for stores that fit in RAM).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"{self.path} is not a trace store (no {MANIFEST_NAME})")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("version") != STORE_VERSION:
            raise ValueError(
                f"unsupported trace store version "
                f"{manifest.get('version')!r} at {self.path}")
        self.manifest = manifest
        self.name = manifest["name"]
        self.num_packets = int(manifest["num_packets"])
        self.has_payloads = bool(manifest["has_payloads"])
        #: ``False`` while the store is still being written (its writer
        #: published an incremental :meth:`TraceWriter.flush` manifest);
        #: manifests predating the flag are final by construction.
        self.complete = bool(manifest.get("complete", True))
        self._mmaps: dict = {}

    def __len__(self) -> int:
        return self.num_packets

    def column(self, name: str) -> np.ndarray:
        """The full column as a read-only array (memory-mapped, lazy)."""
        arr = self._mmaps.get(name)
        if arr is None:
            path = self.path / f"{name}.npy"
            # A zero-length column is just a header; mmap of an empty data
            # block is not portable, so hand back an empty array instead.
            header_only = path.stat().st_size <= _NPY_HEADER_LEN
            arr = np.load(path) if header_only else \
                np.lib.format.open_memmap(path, mode="r")
            self._mmaps[name] = arr
        return arr

    def payloads_slice(self, lo: int, hi: int) -> Optional[List[bytes]]:
        """Materialise the payloads of packets ``[lo, hi)`` (payload traces
        only); the blob is touched only over the requested byte range."""
        if not self.has_payloads:
            return None
        offsets = np.asarray(self.column("payload_offsets")[lo:hi + 1],
                             dtype=np.int64)
        if len(offsets) == 0:
            return []
        base = int(offsets[0])
        raw = bytes(np.asarray(self.column("payload_blob")
                               [base:int(offsets[-1])]))
        return [raw[int(start) - base:int(stop) - base]
                for start, stop in zip(offsets[:-1], offsets[1:])]

    def bin_bounds(self, time_bin: float) -> Optional[np.ndarray]:
        """Stored bin-edge packet offsets, if the manifest indexed this
        ``time_bin``; ``None`` sends the caller to a column scan."""
        index = self.manifest.get("bin_index")
        if index and float(index["time_bin"]) == float(time_bin):
            return np.asarray(index["bounds"], dtype=np.int64)
        return None

    def streaming(self, chunk_packets: int = 65536,
                  max_resident_chunks: int = 8,
                  prefetch: bool = False) -> StreamingTrace:
        """An out-of-core trace view replaying this store chunk by chunk.

        ``prefetch=True`` warms the next chunk on a background thread while
        the current one is consumed (double buffering), overlapping store
        I/O with the replay pipeline's compute.
        """
        return StreamingTrace(self, chunk_packets=chunk_packets,
                              max_resident_chunks=max_resident_chunks,
                              prefetch=prefetch)

    def to_trace(self) -> PacketTrace:
        """Materialise the whole store as an in-memory trace."""
        columns = {column: np.array(self.column(column))
                   for column, _ in STORE_COLUMNS}
        payloads = self.payloads_slice(0, self.num_packets) \
            if self.has_payloads else None
        return PacketTrace(Batch(payloads=payloads, **columns),
                           name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceStore(path={str(self.path)!r}, "
                f"packets={self.num_packets}, "
                f"payloads={self.has_payloads})")


def save_trace_store(trace: PacketTrace, path: Union[str, Path],
                     time_bin: float = 0.1) -> TraceStore:
    """Write an in-memory trace as a v2 store and return it opened."""
    writer = TraceWriter(path, name=trace.name,
                         with_payloads=trace.packets.payloads is not None,
                         time_bin=time_bin)
    writer.append(trace.packets)
    return writer.close()


def open_trace(path: Union[str, Path]) -> Union[PacketTrace, TraceStore]:
    """Open a trace of either format.

    A directory containing a store manifest opens lazily as a
    :class:`TraceStore`; anything else loads eagerly as a v1 archive.
    """
    path = Path(path)
    if path.is_dir():
        return TraceStore(path)
    return load_trace(path)
