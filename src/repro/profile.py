"""Lightweight per-stage profiling for the monitoring pipeline.

The paper's overhead story (Table 3.4) is a *breakdown*: how many cycles
go to feature extraction, selection+regression, shedding and the queries
themselves.  This module gives the reproduction the same lens at runtime:
:class:`StageProfiler` records wall-clock seconds and simulated cycles per
pipeline stage per bin, and :func:`summarize` turns any latency series
into the ``n/mean/p50/p95/p99/max`` statistics the benchmark reports and
the serve ``/metrics`` endpoint expose.

The profiler is deliberately cheap — two ``perf_counter`` reads and one
dict update per stage per bin — so it stays on permanently; it never
influences results (simulated cycles are read, not charged).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional, Sequence

__all__ = ["StageProfiler", "summarize"]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics (count, mean, p50/p95/p99, max) of a series.

    Percentiles use the nearest-rank-on-sorted-values convention: index
    ``round(q/100 * (n - 1))`` of the sorted series, so every reported
    value is one actually observed.  An empty series yields all zeros.
    """
    data = sorted(float(v) for v in values)
    n = len(data)
    if n == 0:
        return {"n": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "max": 0.0}

    def pct(q: float) -> float:
        return data[int(round(q / 100.0 * (n - 1)))]

    return {
        "n": n,
        "mean": sum(data) / n,
        "p50": pct(50.0),
        "p95": pct(95.0),
        "p99": pct(99.0),
        "max": data[-1],
    }


class _StageStats:
    """Running totals for one pipeline stage."""

    __slots__ = ("calls", "seconds_total", "cycles_total")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds_total = 0.0
        self.cycles_total = 0.0


class StageProfiler:
    """Per-stage wall-time and simulated-cycle accounting, bin by bin.

    The pipeline calls :meth:`record` once per stage per bin and
    :meth:`end_bin` once per bin.  Totals are unbounded (running sums);
    the per-bin latency series kept for percentile reporting is a bounded
    ring of the most recent ``max_recent`` bins, so a long-running daemon
    never grows without bound.
    """

    def __init__(self, max_recent: int = 2048) -> None:
        self.max_recent = int(max_recent)
        self._stages: "OrderedDict[str, _StageStats]" = OrderedDict()
        self.bins = 0
        #: Most recent per-bin total pipeline seconds (for percentiles).
        self._bin_seconds: Deque[float] = deque(maxlen=self.max_recent)

    # ------------------------------------------------------------------
    def record(self, stage: str, seconds: float, cycles: float) -> None:
        """Accumulate one stage execution."""
        stats = self._stages.get(stage)
        if stats is None:
            stats = self._stages[stage] = _StageStats()
        stats.calls += 1
        stats.seconds_total += float(seconds)
        stats.cycles_total += float(cycles)

    def end_bin(self, total_seconds: float) -> None:
        """Close one bin (``total_seconds`` = summed stage wall time)."""
        self.bins += 1
        self._bin_seconds.append(float(total_seconds))

    def reset(self) -> None:
        self._stages.clear()
        self.bins = 0
        self._bin_seconds.clear()

    # ------------------------------------------------------------------
    def merge(self, other: "StageProfiler") -> None:
        """Fold another profiler's totals in (sharded-session reporting).

        Per-bin latency series concatenate up to the ring bound; stage
        totals and bin counts add.
        """
        for name, stats in other._stages.items():
            mine = self._stages.get(name)
            if mine is None:
                mine = self._stages[name] = _StageStats()
            mine.calls += stats.calls
            mine.seconds_total += stats.seconds_total
            mine.cycles_total += stats.cycles_total
        self.bins += other.bins
        self._bin_seconds.extend(other._bin_seconds)

    # ------------------------------------------------------------------
    def stage_names(self) -> Sequence[str]:
        return list(self._stages)

    @property
    def bin_seconds(self) -> Sequence[float]:
        """The retained per-bin total-seconds series (most recent bins)."""
        return list(self._bin_seconds)

    def summary(self) -> Dict:
        """JSON-able snapshot: per-stage totals + per-bin percentiles."""
        stages = {
            name: {
                "calls": stats.calls,
                "seconds_total": stats.seconds_total,
                "cycles_total": stats.cycles_total,
                "mean_seconds": (stats.seconds_total / stats.calls
                                 if stats.calls else 0.0),
            }
            for name, stats in self._stages.items()
        }
        return {
            "bins": self.bins,
            "stages": stages,
            "bin_seconds": summarize(self._bin_seconds),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StageProfiler(bins={self.bins}, "
                f"stages={list(self._stages)})")


def merged_summary(profilers: Sequence[Optional[StageProfiler]]) -> Dict:
    """Summary of several profilers folded together (``None`` entries skipped)."""
    merged = StageProfiler()
    for profiler in profilers:
        if profiler is not None:
            merged.merge(profiler)
    return merged.summary()
